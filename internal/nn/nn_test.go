package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"freewayml/internal/linalg"
)

// numericalGrad estimates dLoss/dw by central differences for every
// parameter of the network on a fixed batch.
func numericalGrad(t *testing.T, net *Network, x [][]float64, y []int) [][]float64 {
	t.Helper()
	const eps = 1e-5
	params := net.Params()
	out := make([][]float64, len(params))
	for pi, p := range params {
		out[pi] = make([]float64, len(p.W))
		for i := range p.W {
			orig := p.W[i]
			p.W[i] = orig + eps
			lp, err := net.Loss(x, y)
			if err != nil {
				t.Fatal(err)
			}
			p.W[i] = orig - eps
			lm, err := net.Loss(x, y)
			if err != nil {
				t.Fatal(err)
			}
			p.W[i] = orig
			out[pi][i] = (lp - lm) / (2 * eps)
		}
	}
	return out
}

func checkGradients(t *testing.T, net *Network, x [][]float64, y []int) {
	t.Helper()
	num := numericalGrad(t, net, x, y)
	net.ZeroGrad()
	if _, err := net.AccumulateGradients(x, y); err != nil {
		t.Fatal(err)
	}
	for pi, p := range net.Params() {
		for i := range p.Grad {
			want := num[pi][i]
			got := p.Grad[i]
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("param %d[%d]: analytic %v vs numeric %v", pi, i, got, want)
			}
		}
	}
}

// tensorOf builds a batch tensor from literal rows, for driving a Layer
// directly in tests.
func tensorOf(rows ...[]float64) *linalg.Tensor {
	t := &linalg.Tensor{}
	t.FromRows(rows, len(rows[0]))
	return t
}

func randomBatch(rng *rand.Rand, n, d, classes int) ([][]float64, []int) {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		x[i] = make([]float64, d)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
		}
		y[i] = rng.Intn(classes)
	}
	return x, y
}

func TestDenseGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net, err := NewNetwork(4, 3, NewDense(4, 3, rng))
	if err != nil {
		t.Fatal(err)
	}
	x, y := randomBatch(rng, 5, 4, 3)
	checkGradients(t, net, x, y)
}

func TestMLPGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net, err := NewNetwork(4, 3,
		NewDense(4, 8, rng), NewReLU(),
		NewDense(8, 3, rng))
	if err != nil {
		t.Fatal(err)
	}
	x, y := randomBatch(rng, 6, 4, 3)
	checkGradients(t, net, x, y)
}

func TestSigmoidGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, err := NewNetwork(4, 2,
		NewDense(4, 5, rng), NewSigmoid(),
		NewDense(5, 2, rng))
	if err != nil {
		t.Fatal(err)
	}
	x, y := randomBatch(rng, 4, 4, 2)
	checkGradients(t, net, x, y)
}

func TestConvGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// input: 1 channel × 8; conv(1→2, k=3) → 2×6; pool(2) → 2×3; dense → 2.
	conv := NewConv1D(1, 2, 3, 8, rng)
	pool := NewMaxPool1D(2, 6, 2)
	net, err := NewNetwork(8, 2, conv, NewReLU(), pool, NewDense(6, 2, rng))
	if err != nil {
		t.Fatal(err)
	}
	x, y := randomBatch(rng, 4, 8, 2)
	checkGradients(t, net, x, y)
}

func TestMultiChannelConvGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// 2 channels × 6 → conv(2→3, k=2) → 3×5 → dense → 2.
	conv := NewConv1D(2, 3, 2, 6, rng)
	net, err := NewNetwork(12, 2, conv, NewDense(15, 2, rng))
	if err != nil {
		t.Fatal(err)
	}
	x, y := randomBatch(rng, 3, 12, 2)
	checkGradients(t, net, x, y)
}

func TestNetworkValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := NewNetwork(0, 2, NewDense(1, 2, rng)); err == nil {
		t.Error("inDim 0 should error")
	}
	if _, err := NewNetwork(4, 2); err == nil {
		t.Error("no layers should error")
	}
	if _, err := NewNetwork(4, 2, NewDense(5, 2, rng)); err == nil {
		t.Error("width mismatch should error")
	}
	if _, err := NewNetwork(4, 3, NewDense(4, 2, rng)); err == nil {
		t.Error("output width != classes should error")
	}
}

func TestTrainingConvergesOnSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net, err := NewNetwork(2, 2, NewDense(2, 16, rng), NewReLU(), NewDense(16, 2, rng))
	if err != nil {
		t.Fatal(err)
	}
	opt := NewSGD(0.1, 0.9, 0)
	// Two well-separated clusters.
	sample := func(n int) ([][]float64, []int) {
		x := make([][]float64, n)
		y := make([]int, n)
		for i := range x {
			c := rng.Intn(2)
			cx := -2.0
			if c == 1 {
				cx = 2.0
			}
			x[i] = []float64{cx + rng.NormFloat64()*0.5, rng.NormFloat64() * 0.5}
			y[i] = c
		}
		return x, y
	}
	var lastLoss float64
	for epoch := 0; epoch < 60; epoch++ {
		x, y := sample(64)
		loss, err := net.TrainBatch(x, y, opt)
		if err != nil {
			t.Fatal(err)
		}
		lastLoss = loss
	}
	if lastLoss > 0.1 {
		t.Errorf("loss after training = %v, want < 0.1", lastLoss)
	}
	x, y := sample(200)
	pred := net.Predict(x)
	correct := 0
	for i := range y {
		if pred[i] == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / 200; acc < 0.95 {
		t.Errorf("accuracy = %v, want >= 0.95", acc)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(raw [5]float64) bool {
		logits := make([]float64, 5)
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			logits[i] = math.Mod(v, 50)
		}
		p := Softmax(logits)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxStabilityWithHugeLogits(t *testing.T) {
	p := Softmax([]float64{1000, 1001, 999})
	if math.IsNaN(p[0]) || p[1] < p[0] || p[1] < p[2] {
		t.Errorf("unstable softmax: %v", p)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	a := Softmax([]float64{1, 2, 3})
	b := Softmax([]float64{101, 102, 103})
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("softmax not shift-invariant: %v vs %v", a, b)
		}
	}
}

func TestCrossEntropyErrors(t *testing.T) {
	if _, _, err := SoftmaxCrossEntropy([][]float64{{1, 2}}, []int{0, 1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, _, err := SoftmaxCrossEntropy(nil, nil); err == nil {
		t.Error("empty batch should error")
	}
	if _, _, err := SoftmaxCrossEntropy([][]float64{{1, 2}}, []int{5}); err == nil {
		t.Error("out-of-range label should error")
	}
}

func TestArgmax(t *testing.T) {
	if Argmax(nil) != -1 {
		t.Error("empty Argmax should be -1")
	}
	if Argmax([]float64{1, 3, 2}) != 1 {
		t.Error("Argmax wrong")
	}
	if Argmax([]float64{2, 2}) != 0 {
		t.Error("Argmax tie should pick first")
	}
}

func TestSnapshotRestoreRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net, _ := NewNetwork(3, 2, NewDense(3, 4, rng), NewReLU(), NewDense(4, 2, rng))
	x, y := randomBatch(rng, 8, 3, 2)
	before := net.Predict(x)

	snap, err := net.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Train to change the weights.
	opt := NewSGD(0.5, 0, 0)
	for i := 0; i < 10; i++ {
		if _, err := net.TrainBatch(x, y, opt); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.Restore(snap); err != nil {
		t.Fatal(err)
	}
	after := net.Predict(x)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("predictions differ after restore")
		}
	}
}

func TestRestoreRejectsWrongArchitecture(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, _ := NewNetwork(3, 2, NewDense(3, 2, rng))
	b, _ := NewNetwork(3, 2, NewDense(3, 4, rng), NewReLU(), NewDense(4, 2, rng))
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(snap); err == nil {
		t.Error("restore into different architecture should error")
	}
	if err := b.Restore([]byte("garbage")); err == nil {
		t.Error("restore of garbage should error")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net, _ := NewNetwork(3, 2, NewDense(3, 4, rng), NewReLU(), NewDense(4, 2, rng))
	x, y := randomBatch(rng, 8, 3, 2)
	clone := net.Clone()
	before := clone.Predict(x)
	opt := NewSGD(0.5, 0, 0)
	for i := 0; i < 10; i++ {
		if _, err := net.TrainBatch(x, y, opt); err != nil {
			t.Fatal(err)
		}
	}
	after := clone.Predict(x)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("training the original changed the clone")
		}
	}
	if clone.NumParams() != net.NumParams() {
		t.Error("clone has different parameter count")
	}
}

func TestFlattenAndSetFlatGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net, _ := NewNetwork(3, 2, NewDense(3, 2, rng))
	x, y := randomBatch(rng, 4, 3, 2)
	if _, err := net.AccumulateGradients(x, y); err != nil {
		t.Fatal(err)
	}
	flat := net.FlattenGrads()
	if len(flat) != net.NumParams() {
		t.Fatalf("flat grads len %d, want %d", len(flat), net.NumParams())
	}
	doubled := make([]float64, len(flat))
	for i, g := range flat {
		doubled[i] = 2 * g
	}
	net.SetFlatGrads(doubled)
	got := net.FlattenGrads()
	for i := range got {
		if math.Abs(got[i]-doubled[i]) > 1e-15 {
			t.Fatal("SetFlatGrads roundtrip mismatch")
		}
	}
}

func TestSetFlatGradsPanicsOnLength(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net, _ := NewNetwork(3, 2, NewDense(3, 2, rng))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	net.SetFlatGrads(make([]float64, 3))
}

func TestSGDValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewSGD(0, 0, 0) },
		func() { NewSGD(0.1, -0.1, 0) },
		func() { NewSGD(0.1, 1, 0) },
		func() { NewSGD(0.1, 0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	p := newParam(1)
	p.W[0] = 10
	opt := NewSGD(0.1, 0, 0.5)
	opt.Step([]*Param{p}) // grad 0, decay pulls toward 0
	if p.W[0] >= 10 {
		t.Errorf("weight decay did not shrink weight: %v", p.W[0])
	}
}

func TestSGDMomentumAccelerates(t *testing.T) {
	// Under a constant gradient, momentum should move farther than plain SGD
	// after several steps.
	plain := newParam(1)
	mom := newParam(1)
	optP := NewSGD(0.1, 0, 0)
	optM := NewSGD(0.1, 0.9, 0)
	for i := 0; i < 10; i++ {
		plain.Grad[0] = 1
		mom.Grad[0] = 1
		optP.Step([]*Param{plain})
		optM.Step([]*Param{mom})
	}
	if !(mom.W[0] < plain.W[0]) { // both negative; momentum more so
		t.Errorf("momentum %v not ahead of plain %v", mom.W[0], plain.W[0])
	}
	optM.Reset()
	if len(optM.velocity) != 0 {
		t.Error("Reset did not clear velocity")
	}
}

func TestMaxPoolPartialWindow(t *testing.T) {
	p := NewMaxPool1D(1, 5, 2) // windows: [0,1],[2,3],[4]
	out := p.Forward(tensorOf([]float64{1, 5, 2, 3, 9}))
	want := []float64{5, 3, 9}
	for i := range want {
		if out.At(0, i) != want[i] {
			t.Fatalf("pool out = %v, want %v", out.Row(0), want)
		}
	}
	// Gradient routes to argmax positions only.
	gi := p.Backward(tensorOf([]float64{1, 1, 1}))
	wantG := []float64{0, 1, 0, 1, 1}
	for i := range wantG {
		if gi.At(0, i) != wantG[i] {
			t.Fatalf("pool grad = %v, want %v", gi.Row(0), wantG)
		}
	}
}

func TestLayerConstructorPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cases := []func(){
		func() { NewDense(0, 1, rng) },
		func() { NewConv1D(0, 1, 1, 4, rng) },
		func() { NewConv1D(1, 1, 5, 4, rng) },
		func() { NewMaxPool1D(1, 4, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestNumParamsCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	net, _ := NewNetwork(4, 3, NewDense(4, 5, rng), NewReLU(), NewDense(5, 3, rng))
	want := 4*5 + 5 + 5*3 + 3
	if got := net.NumParams(); got != want {
		t.Errorf("NumParams = %d, want %d", got, want)
	}
}
