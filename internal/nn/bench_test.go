package nn

import (
	"math/rand"
	"testing"
)

func benchNet(b *testing.B, hidden int) (*Network, [][]float64, []int) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	net, err := NewNetwork(10, 2, NewDense(10, hidden, rng), NewReLU(), NewDense(hidden, 2, rng))
	if err != nil {
		b.Fatal(err)
	}
	x := make([][]float64, 256)
	y := make([]int, 256)
	for i := range x {
		x[i] = make([]float64, 10)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
		}
		y[i] = rng.Intn(2)
	}
	return net, x, y
}

func BenchmarkMLPForward(b *testing.B) {
	net, x, _ := benchNet(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

func BenchmarkMLPTrainBatch(b *testing.B) {
	net, x, y := benchNet(b, 64)
	opt := NewSGD(0.05, 0.9, 1e-4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.TrainBatch(x, y, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvForward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	conv := NewConv1D(1, 32, 3, 64, rng)
	pool := NewMaxPool1D(32, 62, 2)
	net, err := NewNetwork(64, 2, conv, NewReLU(), pool, NewDense(32*31, 2, rng))
	if err != nil {
		b.Fatal(err)
	}
	x := make([][]float64, 64)
	for i := range x {
		x[i] = make([]float64, 64)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

func BenchmarkSnapshotRestore(b *testing.B) {
	net, _, _ := benchNet(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := net.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		if err := net.Restore(snap); err != nil {
			b.Fatal(err)
		}
	}
}
