package nn

import (
	"math/rand"
	"testing"

	"freewayml/internal/linalg"
)

// TestTensorEntryMatchesRows pins that the fused-batch entry (ForwardTensor /
// PredictTensorInto) is bitwise identical to the row-slice API on the same
// values — the property the JSON-vs-binary differential test inherits.
func TestTensorEntryMatchesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net, err := NewNetwork(4, 3, NewDense(4, 8, rng), NewReLU(), NewDense(8, 3, rng))
	if err != nil {
		t.Fatal(err)
	}
	const rows = 9
	x := make([][]float64, rows)
	fused := linalg.NewTensor(rows, 4)
	for i := range x {
		x[i] = make([]float64, 4)
		for j := range x[i] {
			v := rng.NormFloat64()
			x[i][j] = v
			fused.Set(i, j, v)
		}
	}

	wantLogits := net.Forward(x)
	gotLogits, err := net.ForwardTensor(fused)
	if err != nil {
		t.Fatal(err)
	}
	if gotLogits.Rows != rows || gotLogits.Cols != 3 {
		t.Fatalf("fused logits shape %dx%d", gotLogits.Rows, gotLogits.Cols)
	}
	for i := range wantLogits {
		for j, w := range wantLogits[i] {
			if gotLogits.At(i, j) != w {
				t.Fatalf("logits[%d][%d] = %v, want %v", i, j, gotLogits.At(i, j), w)
			}
		}
	}

	wantPred := net.Predict(x)
	gotPred := make([]int, rows)
	if err := net.PredictTensorInto(fused, gotPred); err != nil {
		t.Fatal(err)
	}
	for i := range wantPred {
		if gotPred[i] != wantPred[i] {
			t.Fatalf("pred[%d] = %d, want %d", i, gotPred[i], wantPred[i])
		}
	}
}

func TestTensorEntryRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	net, err := NewNetwork(3, 2, NewDense(3, 2, rng))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.ForwardTensor(nil); err == nil {
		t.Fatal("nil batch accepted")
	}
	if _, err := net.ForwardTensor(linalg.NewTensor(0, 3)); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := net.ForwardTensor(linalg.NewTensor(2, 5)); err == nil {
		t.Fatal("wrong width accepted")
	}
	if err := net.PredictTensorInto(linalg.NewTensor(2, 3), make([]int, 1)); err == nil {
		t.Fatal("short dst accepted")
	}
}

// TestPredictTensorIntoWarmAllocs: the fused entry adds no staging or result
// allocations of its own — warm, it allocates strictly less than the
// row-slice Predict (which pays per-row staging plus the result slice). The
// residual allocations both share come from layer-internal view headers.
func TestPredictTensorIntoWarmAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	net, err := NewNetwork(6, 2, NewDense(6, 8, rng), NewReLU(), NewDense(8, 2, rng))
	if err != nil {
		t.Fatal(err)
	}
	x := linalg.NewTensor(16, 6)
	rows := make([][]float64, 16)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range rows {
		rows[i] = x.Row(i)
	}
	dst := make([]int, 16)
	if err := net.PredictTensorInto(x, dst); err != nil {
		t.Fatal(err)
	}
	net.Predict(rows)
	fused := testing.AllocsPerRun(50, func() {
		if err := net.PredictTensorInto(x, dst); err != nil {
			t.Fatal(err)
		}
	})
	rowAPI := testing.AllocsPerRun(50, func() { net.Predict(rows) })
	if fused >= rowAPI {
		t.Fatalf("fused predict allocates %.1f, row API %.1f — fused must be cheaper", fused, rowAPI)
	}
}
