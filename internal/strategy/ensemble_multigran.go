package strategy

import (
	"context"
	"fmt"
	"sync"
	"time"

	"freewayml/internal/ensemble"
	"freewayml/internal/linalg"
	"freewayml/internal/model"
	"freewayml/internal/nn"
	"freewayml/internal/shift"
	"freewayml/internal/stream"
	"freewayml/internal/window"
)

// Granularity is one fixed-frequency model of the multi-time-granularity
// ensemble: model i trains every Every batches on the batches accumulated
// since its last update.
type Granularity struct {
	// Model is the member model; Every is its update period in batches.
	Model model.Model
	Every int

	pending  int
	bufX     [][]float64
	bufY     []int
	centroid linalg.Vector // distribution of the last training data
	wd       *Watchdog     // nil when the watchdog is disabled
	ver      uint64        // bumped on every parameter/centroid mutation
}

// NewGranularity wraps a model as a fixed-frequency ensemble member. wd may
// be nil to disable divergence monitoring.
func NewGranularity(m model.Model, every int, wd *Watchdog) *Granularity {
	return &Granularity{Model: m, Every: every, wd: wd}
}

// BuildGranularities builds the fixed-frequency members: model i updates
// every 2^i batches.
func BuildGranularities(factory model.Factory, dim, classes, n int, wcfg WatchdogConfig) ([]*Granularity, error) {
	grans := make([]*Granularity, 0, n)
	for i := 0; i < n; i++ {
		m, err := factory(dim, classes)
		if err != nil {
			return nil, err
		}
		var wd *Watchdog
		if !wcfg.Disabled {
			wd = NewWatchdog(fmt.Sprintf("gran%d", i), wcfg)
		}
		grans = append(grans, NewGranularity(m, 1<<i, wd))
	}
	return grans, nil
}

// Preserver receives the window-close knowledge-preservation hook. The
// knowledge-reuse strategy implements it; callers hold the ensemble's long-
// model lock, so longSnap may be invoked directly.
type Preserver interface {
	PreserveAtWindowClose(disorder float64, distribution linalg.Vector, longSnap func() ([]byte, error), shortSnap []byte, replaceRadius float64, obs shift.Observation) error
}

// EnsembleConfig carries the knobs of the multi-granularity mechanism (a
// subset of core.Config; see there for semantics).
type EnsembleConfig struct {
	Sigma      float64
	LongEMA    float64
	LongEpochs int
	LongChunk  int
	LongRebase bool
	Async      bool
	// Tier selects the kernel tier snapshot members are compiled onto at
	// publication (TierF64 publishes no engines). Training always runs the
	// f64 oracle kernels regardless.
	Tier linalg.KernelTier
}

// EnsembleDeps are the ensemble's callbacks into its host: health
// bookkeeping, the current batch index, the same-regime replacement radius
// (computed from the detector on the caller's goroutine), and the optional
// knowledge preserver.
type EnsembleDeps struct {
	// Stages receives long-update durations measured off the request path
	// (the asynchronous window close). Required; wrap a nil observer.
	Stages StageObserver
	// OnRecovery folds one watchdog event into the host's health counters.
	// Must be safe from the async update goroutine.
	OnRecovery func(RecoveryEvent)
	// OnAsyncErr records a background-update error for the host to surface.
	OnAsyncErr func(error)
	// BatchNum returns the host's current batch index (caller goroutine
	// only; async paths capture it synchronously).
	BatchNum func() int
	// ReplaceRadius returns the same-regime knowledge-replacement radius.
	// Called synchronously at window close (the detector is not safe to
	// touch from an async update).
	ReplaceRadius func() float64
}

// Ensemble is the Pattern-A mechanism (and the dispatcher's fallback): the
// short/mid fixed-frequency models plus the ASW-driven long-granularity
// model, fused with the Gaussian-kernel distance weighting of Eq. 12-14.
// It owns the adaptive streaming window and the long model's asynchronous
// update lifecycle.
type Ensemble struct {
	cfg  EnsembleConfig
	deps EnsembleDeps

	grans []*Granularity // grans[0] updates per batch
	long  model.Model    // ASW-driven long-granularity model

	asw          *window.ASW
	pre          *window.Precomputer
	longOpt      *nn.SGD
	longCentroid linalg.Vector
	longWd       *Watchdog // nil when the watchdog is disabled

	preserver Preserver // set after construction (nil disables preservation)

	mu      sync.RWMutex // guards long model + longCentroid + longVer during async updates
	wg      sync.WaitGroup
	longVer uint64 // bumped on every long-model mutation (under mu)

	// Snapshot-publication cache: clones are re-made only for members whose
	// version moved since the last publication. Guarded by pubMu (one
	// publisher at a time); the cached clones themselves are immutable.
	pubMu      sync.Mutex
	pubMembers []SnapshotMember
	pubVers    []uint64
	pubLongVer uint64
	// pubQuantized counts int8 weight matrices quantized across all
	// publications (monotone; the observer exports the delta per publish).
	pubQuantized uint64
}

// NewEnsemble assembles the mechanism from its pre-built parts. pre and
// longOpt are non-nil only under the pre-computing window; longWd may be
// nil to disable long-model divergence monitoring.
func NewEnsemble(cfg EnsembleConfig, grans []*Granularity, long model.Model, longWd *Watchdog, asw *window.ASW, pre *window.Precomputer, longOpt *nn.SGD, deps EnsembleDeps) *Ensemble {
	return &Ensemble{
		cfg:     cfg,
		deps:    deps,
		grans:   grans,
		long:    long,
		asw:     asw,
		pre:     pre,
		longOpt: longOpt,
		longWd:  longWd,
	}
}

// SetPreserver attaches the knowledge-preservation hook (call before the
// first Train; nil disables preservation).
func (e *Ensemble) SetPreserver(p Preserver) { e.preserver = p }

// Name identifies the mechanism.
func (e *Ensemble) Name() string { return "multi-granularity" }

// Granularities exposes the fixed-frequency members (checkpointing and
// white-box tests).
func (e *Ensemble) Granularities() []*Granularity { return e.grans }

// ShortModel returns the per-batch member (grans[0]), the "deployed" model
// the other mechanisms arbitrate against.
func (e *Ensemble) ShortModel() model.Model { return e.grans[0].Model }

// AdoptShort replaces the short model's parameters and training centroid —
// the knowledge-reuse adoption path (SC3).
func (e *Ensemble) AdoptShort(snap []byte, centroid linalg.Vector) error {
	if err := e.grans[0].Model.Restore(snap); err != nil {
		return err
	}
	e.grans[0].centroid = centroid.Clone()
	e.grans[0].ver++
	return nil
}

// SetDecayBoost forwards the rate-adjuster boost to the window.
func (e *Ensemble) SetDecayBoost(v float64) { e.asw.SetDecayBoost(v) }

// Disorder returns the window's normalized disorder (A1/A2 and β-policy
// evidence).
func (e *Ensemble) Disorder() float64 { return e.asw.Disorder() }

// WindowLen returns the batches currently held by the window.
func (e *Ensemble) WindowLen() int { return e.asw.Len() }

// WindowItems returns the samples currently held by the window.
func (e *Ensemble) WindowItems() int { return e.asw.Items() }

// WindowEvictions returns the window's lifetime decay-eviction count.
func (e *Ensemble) WindowEvictions() int { return e.asw.Evictions() }

// Wait blocks until any in-flight asynchronous long-model update finishes.
func (e *Ensemble) Wait() { e.wg.Wait() }

// InferWarmup predicts with the short model alone — the strategy while the
// detector has no projected centroid yet.
func (e *Ensemble) InferWarmup(b stream.Batch) Prediction {
	proba := e.grans[0].Model.PredictProba(b.X)
	return Prediction{Pred: argmaxRows(proba), Proba: proba}
}

// GranMembers returns the fixed-frequency members with their distances to
// the live distribution — the knowledge-reuse fusion deliberately excludes
// the long model.
func (e *Ensemble) GranMembers(yBar linalg.Vector, x [][]float64) []ensemble.Member {
	members := make([]ensemble.Member, 0, len(e.grans))
	for _, g := range e.grans {
		members = append(members, ensemble.Member{
			Proba:    g.Model.PredictProba(x),
			Distance: centroidDistance(yBar, g.centroid),
		})
	}
	return members
}

// Infer fuses all granularity models with the Gaussian-kernel distance
// weighting of Eq. 12-14. Always serves (ok=true).
func (e *Ensemble) Infer(ctx context.Context, b stream.Batch, obs shift.Observation, tr Trace) (Prediction, bool, error) {
	tr = ensureTrace(tr)
	// Short and mid-granularity models: distance to their last training
	// distribution (D_short of Eq. 12 equals obs.Distance for the per-batch
	// model, since its centroid is the previous batch's ȳ).
	members := e.GranMembers(obs.YBar, b.X)
	e.mu.RLock()
	members = append(members, ensemble.Member{
		Proba:    e.long.PredictProba(b.X),
		Distance: centroidDistance(obs.YBar, e.longCentroid),
	})
	e.mu.RUnlock()

	// Normalize distances by their mean so the kernel width Sigma is
	// scale-free: the projected space's units vary per dataset, and Eq. 14
	// only cares about the models' relative match to the live data.
	normalizeDistances(members)
	recordWeights(tr, members, e.cfg.Sigma)

	// Insight A emerges from the distances themselves: under a directional
	// shift (A1) the previous batch — the short model's distribution — is
	// the nearest thing to the live data, while under localized fluctuation
	// (A2) the window's weighted centroid sits at the center of the noise
	// and the long model wins the kernel weighting.
	fused, err := ensemble.Fuse(members, e.cfg.Sigma)
	if err != nil {
		return Prediction{}, false, fmt.Errorf("strategy: ensemble: %w", err)
	}
	return Prediction{Pred: argmaxRows(fused), Proba: fused}, true, nil
}

// Train updates every granularity model per its schedule, maintains the
// window, and triggers the long-model update at window close.
func (e *Ensemble) Train(ctx context.Context, b stream.Batch, obs shift.Observation, tr Trace) error {
	tr = ensureTrace(tr)
	if err := ctx.Err(); err != nil {
		return err
	}
	// Fixed-frequency models. After every update the watchdog checks the
	// model's health; a diverged model is rolled back to its last healthy
	// snapshot and keeps its previous centroid (the rolled-back parameters
	// belong to the pre-divergence distribution).
	tShort := tr.StageStart()
	for _, g := range e.grans {
		g.bufX = append(g.bufX, b.X...)
		g.bufY = append(g.bufY, b.Y...)
		g.pending++
		if g.pending < g.Every {
			continue
		}
		loss, err := g.Model.Fit(g.bufX, g.bufY)
		if err != nil {
			return err
		}
		diverged := false
		if g.wd != nil {
			if ev := g.wd.Check(g.Model, loss, e.deps.BatchNum()); ev != nil {
				diverged = true
				e.deps.OnRecovery(*ev)
			}
		}
		if !diverged && obs.YBar != nil {
			g.centroid = obs.YBar.Clone()
		}
		g.ver++ // Fit ran (or the watchdog rolled back): parameters moved
		g.bufX, g.bufY, g.pending = nil, nil, 0
	}
	tr.StageDone(StageShortUpdate, tShort)

	// Long-model weight averaging: fold the freshly updated short model
	// into the long model's EMA and advance its centroid the same way.
	if e.cfg.LongEMA > 0 && obs.YBar != nil && e.long.Net() != nil {
		e.mu.Lock()
		emaParams(e.long, e.grans[0].Model, e.cfg.LongEMA)
		if e.longCentroid == nil {
			e.longCentroid = obs.YBar.Clone()
		} else if len(e.longCentroid) == len(obs.YBar) {
			for j := range e.longCentroid {
				e.longCentroid[j] = e.cfg.LongEMA*e.longCentroid[j] + (1-e.cfg.LongEMA)*obs.YBar[j]
			}
		}
		e.longVer++
		e.mu.Unlock()
	}

	// Long model via the adaptive streaming window. During detector warm-up
	// there is no projected centroid yet, so the window starts afterward.
	if obs.YBar == nil {
		return nil
	}
	tWin := tr.StageStart()
	full, err := e.asw.Push(b.X, b.Y, obs.YBar)
	if err != nil {
		return err
	}
	if e.pre != nil {
		// Pre-computing window (Sec. V-B): fold this batch's gradient in
		// now, so the update at window close is a single cheap step. This
		// trades the decay weighting of TrainingSet for latency — the
		// gradients were computed at arrival weight.
		e.mu.Lock()
		err := e.pre.AddSubset(b.X, b.Y)
		e.mu.Unlock()
		if err != nil {
			return err
		}
	}
	tr.StageDone(StageWindowPush, tWin)
	if !full {
		return nil
	}
	tr.WindowClosed()
	return e.updateLong(obs, tr)
}

// updateLong trains the long-granularity model from the closed window,
// preserves knowledge per the β policy, and resets the window.
func (e *Ensemble) updateLong(obs shift.Observation, tr Trace) error {
	disorder := e.asw.Disorder()
	distribution := e.asw.Distribution()
	var trainX [][]float64
	var trainY []int
	if e.pre == nil {
		trainX, trainY = e.asw.TrainingSet()
	}
	e.asw.Reset()

	// The short model keeps training on the caller's goroutine, so its
	// snapshot must be captured now, not inside an async update. It serves
	// two purposes: the β-policy preservation below, and re-basing the long
	// model — the long-granularity model is the current model smoothed over
	// the whole window, so each close starts from the freshest parameters
	// and then trains across the window's weighted data. Without re-basing
	// the long model accumulates staleness that no distance weighting can
	// detect (distance measures data match, not parameter quality).
	shortSnap, err := e.grans[0].Model.Snapshot()
	if err != nil {
		return err
	}
	// Same-regime radius for knowledge replacement: computed here, on the
	// caller's goroutine — the detector is not safe to touch from an async
	// update.
	replaceRadius := e.deps.ReplaceRadius()
	batchNum := e.deps.BatchNum()

	apply := func() error {
		e.mu.Lock()
		defer e.mu.Unlock()
		e.longVer++
		// lastLoss feeds the long model's watchdog; negative means the
		// update path produced no loss signal (precompute), where only the
		// weight checks apply.
		lastLoss := -1.0
		if e.pre != nil {
			if err := e.pre.Finalize(e.longOpt); err != nil {
				return err
			}
			e.pre.Start()
		} else if len(trainX) > 0 {
			if e.cfg.LongRebase && e.cfg.LongEMA == 0 {
				if err := e.long.Restore(shortSnap); err != nil {
					return err
				}
			}
			// Chunked mini-batch epochs over the weighted window, matching
			// how a DataLoader-driven PyTorch update iterates window data.
			for epoch := 0; epoch < e.cfg.LongEpochs; epoch++ {
				for start := 0; start < len(trainX); start += e.cfg.LongChunk {
					end := start + e.cfg.LongChunk
					if end > len(trainX) {
						end = len(trainX)
					}
					loss, err := e.long.Fit(trainX[start:end], trainY[start:end])
					if err != nil {
						return err
					}
					lastLoss = loss
				}
			}
		}
		if e.longWd != nil {
			if ev := e.longWd.Check(e.long, lastLoss, batchNum); ev != nil {
				e.deps.OnRecovery(*ev)
			}
		}
		// With EMA averaging the centroid is maintained per batch and is
		// fresher than the window distribution.
		if distribution != nil && e.cfg.LongEMA == 0 {
			e.longCentroid = distribution
		}
		if e.preserver == nil {
			return nil
		}
		return e.preserver.PreserveAtWindowClose(disorder, distribution, e.long.Snapshot, shortSnap, replaceRadius, obs)
	}

	// With pre-computed gradients the closing step is a single optimizer
	// application — running it inline is cheaper than a goroutine and avoids
	// interleaving the next window's AddSubset with this window's Finalize.
	if e.cfg.Async && e.pre == nil {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			// The batch's trace event may already be emitted when this
			// finishes, so the async path feeds the stage histogram only.
			start := time.Now()
			err := apply()
			e.deps.Stages.ObserveStage(StageLongUpdate, time.Since(start))
			if err != nil {
				e.deps.OnAsyncErr(err)
			}
		}()
		return nil
	}
	tLong := tr.StageStart()
	err = apply()
	tr.StageDone(StageLongUpdate, tLong)
	return err
}

// PublishSnapshot builds the immutable member view for the inference plane:
// every granularity model in order, the long model last. Members whose
// version counter has not moved since the previous publication reuse the
// cached clone, so steady-state publication cost is one deep copy of the
// models that actually trained this batch (usually just the short model).
// Must be called from the training goroutine — it reads the granularity
// models without e.mu; the long model is cloned under e.mu so an in-flight
// asynchronous update cannot tear it.
func (e *Ensemble) PublishSnapshot() []SnapshotMember {
	e.pubMu.Lock()
	defer e.pubMu.Unlock()
	n := len(e.grans)
	if e.pubMembers == nil {
		e.pubMembers = make([]SnapshotMember, n+1)
		e.pubVers = make([]uint64, n)
	}
	members := make([]SnapshotMember, n+1)
	for i, g := range e.grans {
		if e.pubMembers[i].Model == nil || e.pubVers[i] != g.ver {
			var c linalg.Vector
			if g.centroid != nil {
				c = g.centroid.Clone()
			}
			clone := g.Model.Clone()
			e.pubMembers[i] = SnapshotMember{Model: clone, Centroid: c, Engine: e.compileEngine(clone)}
			e.pubVers[i] = g.ver
		}
		members[i] = e.pubMembers[i]
	}
	e.mu.RLock()
	if e.pubMembers[n].Model == nil || e.pubLongVer != e.longVer {
		var c linalg.Vector
		if e.longCentroid != nil {
			c = e.longCentroid.Clone()
		}
		clone := e.long.Clone()
		e.pubMembers[n] = SnapshotMember{Model: clone, Centroid: c, Engine: e.compileEngine(clone)}
		e.pubLongVer = e.longVer
	}
	members[n] = e.pubMembers[n]
	e.mu.RUnlock()
	return members
}

// compileEngine lowers a freshly published member clone onto the configured
// speed tier. Families without a network substrate (nb/ht/arf) and
// compilation failures return nil — those members serve through the f64
// model, so a mixed ensemble degrades gracefully instead of erroring.
// Called under pubMu, so the quantization counter needs no atomics.
func (e *Ensemble) compileEngine(m model.Model) *nn.InferEngine {
	if e.cfg.Tier == linalg.TierF64 {
		return nil
	}
	net := m.Net()
	if net == nil {
		return nil
	}
	eng, err := nn.CompileInfer(net, e.cfg.Tier)
	if err != nil {
		return nil
	}
	e.pubQuantized += uint64(eng.QuantMats())
	return eng
}

// QuantizedBuilt returns the cumulative number of int8 weight matrices
// quantized at publication time (monotone). Call from the publishing
// goroutine.
func (e *Ensemble) QuantizedBuilt() uint64 {
	e.pubMu.Lock()
	defer e.pubMu.Unlock()
	return e.pubQuantized
}

// Tier returns the configured snapshot kernel tier.
func (e *Ensemble) Tier() linalg.KernelTier { return e.cfg.Tier }

// DebugModels exposes the short and long granularity models for diagnostic
// tooling and white-box tests.
func (e *Ensemble) DebugModels() (short, long model.Model) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.grans[0].Model, e.long
}

// DebugDistances recomputes the short/long model shift distances for an
// observation's centroid (diagnostics only).
func (e *Ensemble) DebugDistances(yBar linalg.Vector) (dShort, dLong float64) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return centroidDistance(yBar, e.grans[0].centroid),
		centroidDistance(yBar, e.longCentroid)
}

// EnsembleState is the ensemble's durable state for checkpointing.
type EnsembleState struct {
	GranSnapshots [][]byte
	GranCentroids []linalg.Vector
	LongSnapshot  []byte
	LongCentroid  linalg.Vector
}

// ExportState snapshots every member. Any in-flight asynchronous long-model
// update is waited out first so the state is consistent.
func (e *Ensemble) ExportState() (EnsembleState, error) {
	e.wg.Wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	var st EnsembleState
	for _, g := range e.grans {
		snap, err := g.Model.Snapshot()
		if err != nil {
			return EnsembleState{}, fmt.Errorf("strategy: snapshot short model: %w", err)
		}
		st.GranSnapshots = append(st.GranSnapshots, snap)
		var c linalg.Vector
		if g.centroid != nil {
			c = g.centroid.Clone()
		}
		st.GranCentroids = append(st.GranCentroids, c)
	}
	longSnap, err := e.long.Snapshot()
	if err != nil {
		return EnsembleState{}, fmt.Errorf("strategy: snapshot long model: %w", err)
	}
	st.LongSnapshot = longSnap
	if e.longCentroid != nil {
		st.LongCentroid = e.longCentroid.Clone()
	}
	return st, nil
}

// ImportState restores every member from a checkpoint, clears the pending
// fixed-frequency buffers, and restarts the window (its contents are
// intentionally not serialized).
func (e *Ensemble) ImportState(st EnsembleState) error {
	if len(st.GranSnapshots) != len(e.grans) {
		return fmt.Errorf("strategy: granularity count mismatch: state has %d, ensemble has %d", len(st.GranSnapshots), len(e.grans))
	}
	e.wg.Wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, g := range e.grans {
		if err := g.Model.Restore(st.GranSnapshots[i]); err != nil {
			return fmt.Errorf("strategy: restore granularity %d: %w", i, err)
		}
		g.centroid = st.GranCentroids[i]
		g.ver++
		g.bufX, g.bufY, g.pending = nil, nil, 0
	}
	if err := e.long.Restore(st.LongSnapshot); err != nil {
		return fmt.Errorf("strategy: restore long model: %w", err)
	}
	e.longCentroid = st.LongCentroid
	e.longVer++
	e.asw.Reset()
	if e.pre != nil {
		e.pre.Start()
	}
	return nil
}

// emaParams folds src's weights into dst: dst = decay·dst + (1−decay)·src.
// Both models must share an architecture. Callers hold e.mu.
func emaParams(dst, src model.Model, decay float64) {
	dp := dst.Net().Params()
	sp := src.Net().Params()
	for i := range dp {
		dw, sw := dp[i].W, sp[i].W
		for j := range dw {
			dw[j] = decay*dw[j] + (1-decay)*sw[j]
		}
	}
}

// argmaxRows maps per-sample class distributions to hard labels.
func argmaxRows(proba [][]float64) []int {
	out := make([]int, len(proba))
	for i, row := range proba {
		out[i] = nn.Argmax(row)
	}
	return out
}
