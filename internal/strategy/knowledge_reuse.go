package strategy

import (
	"context"
	"fmt"
	"math"

	"freewayml/internal/ensemble"
	"freewayml/internal/knowledge"
	"freewayml/internal/linalg"
	"freewayml/internal/model"
	"freewayml/internal/shift"
	"freewayml/internal/stream"
)

// KnowledgeReuse is the Pattern-C mechanism: when a distribution reoccurs,
// the nearest preserved snapshot is restored and fused with the live
// fixed-frequency models (paper Sec. IV-D). It also implements Preserver:
// the ensemble's window close feeds it the β-policy preservation decision.
type KnowledgeReuse struct {
	store *knowledge.Store
	reuse model.Model // scratch model for restores
	ens   *Ensemble   // live members for the fusion + adoption target

	sigma        float64 // Gaussian-kernel width of the fusion
	beta         float64 // disorder threshold of the preservation policy
	reoccurRatio float64 // confidence gate, shared with Pattern-C detection
}

// NewKnowledgeReuse builds the mechanism over the (possibly process-shared)
// knowledge store. reuse is a scratch model of the stream's shape.
func NewKnowledgeReuse(store *knowledge.Store, reuse model.Model, ens *Ensemble, sigma, beta, reoccurRatio float64) *KnowledgeReuse {
	return &KnowledgeReuse{store: store, reuse: reuse, ens: ens, sigma: sigma, beta: beta, reoccurRatio: reoccurRatio}
}

// Name identifies the mechanism.
func (k *KnowledgeReuse) Name() string { return "knowledge-reuse" }

// Store exposes the underlying knowledge store.
func (k *KnowledgeReuse) Store() *knowledge.Store { return k.store }

// Infer restores the nearest historical snapshot when it is closer to the
// current distribution than the previous batch was (paper Sec. IV-D
// knowledge match); ok=false when nothing qualifies.
func (k *KnowledgeReuse) Infer(ctx context.Context, b stream.Batch, obs shift.Observation, tr Trace) (Prediction, bool, error) {
	tr = ensureTrace(tr)
	tMatch := tr.StageStart()
	snap, dist, ok, err := k.store.Match(obs.YBar)
	tr.StageDone(StageKnowledgeLookup, tMatch)
	if err != nil {
		return Prediction{}, false, fmt.Errorf("strategy: knowledge match: %w", err)
	}
	// Reuse only confident matches: the preserved distribution must be
	// meaningfully closer than the batch we just shifted away from (same
	// ratio as the Pattern C detection rule), else a marginal restore can
	// displace a continuously-trained model that is already adequate.
	if !ok || dist >= k.reoccurRatio*obs.Distance {
		if !ok {
			dist = math.Inf(1) // no eligible entry: trace it as -1
		}
		tr.Knowledge(false, dist)
		return Prediction{}, false, nil
	}
	tr.Knowledge(true, dist)
	if err := k.reuse.Restore(snap); err != nil {
		return Prediction{}, false, fmt.Errorf("strategy: knowledge restore: %w", err)
	}

	// The restored model joins the distance ensemble rather than replacing
	// it outright: its matched distance is far smaller than the current
	// models' post-shift distances, so it dominates the kernel weighting —
	// but if the live models are still competitive the fusion keeps their
	// signal. The long model deliberately stays out: it smooths over the
	// departed regime.
	members := append([]ensemble.Member{{Proba: k.reuse.PredictProba(b.X), Distance: dist}},
		k.ens.GranMembers(obs.YBar, b.X)...)
	normalizeDistances(members)
	recordWeights(tr, members, k.sigma)
	fused, err := ensemble.Fuse(members, k.sigma)
	if err != nil {
		return Prediction{}, false, fmt.Errorf("strategy: knowledge fuse: %w", err)
	}
	pred := Prediction{Pred: argmaxRows(fused), Proba: fused}

	// Reuse means not relearning (SC3): on a confident match the preserved
	// parameters also become the working short model, so subsequent batches
	// of the reoccurred regime start from them instead of re-adapting from
	// the departed regime's.
	if dist < 0.5*k.reoccurRatio*obs.Distance {
		if err := k.ens.AdoptShort(snap, obs.YBar); err != nil {
			return Prediction{}, false, fmt.Errorf("strategy: knowledge adopt: %w", err)
		}
	}
	return pred, true, nil
}

// Train is a no-op: the store is fed by PreserveAtWindowClose, not by
// per-batch training.
func (k *KnowledgeReuse) Train(ctx context.Context, b stream.Batch, obs shift.Observation, tr Trace) error {
	return nil
}

// PreserveAtWindowClose applies the disorder-threshold policy of Sec. IV-D1.
// Callers hold the ensemble's long-model lock; longSnap snapshots the long
// model under that lock. shortSnap was captured synchronously at window
// close.
func (k *KnowledgeReuse) PreserveAtWindowClose(disorder float64, distribution linalg.Vector, longSnap func() ([]byte, error), shortSnap []byte, replaceRadius float64, obs shift.Observation) error {
	if distribution == nil {
		return nil
	}
	decision := knowledge.Policy{Beta: k.beta}.Decide(disorder)
	if decision.SaveLong {
		snap, err := longSnap()
		if err != nil {
			return err
		}
		if err := k.store.PreserveOrReplace(distribution, snap, "long", obs.Batch, replaceRadius); err != nil {
			return err
		}
	}
	if decision.SaveShort && shortSnap != nil && obs.YBar != nil {
		if err := k.store.PreserveOrReplace(obs.YBar, shortSnap, "short", obs.Batch, replaceRadius); err != nil {
			return err
		}
	}
	return nil
}
