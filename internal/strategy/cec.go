package strategy

import (
	"context"
	"fmt"
	"sort"

	"freewayml/internal/cluster"
	"freewayml/internal/metrics"
	"freewayml/internal/shift"
	"freewayml/internal/stream"
)

// cecMargin is how much CEC's experience agreement must exceed the deployed
// model's before CEC takes over.
const cecMargin = 0.05

// CEC is the Pattern-B mechanism: coherent experience clustering. When a
// sudden shift leaves every trained model unsuitable, the batch is jointly
// clustered with the labeled experience closest to it, and clusters adopt
// the majority label of their experience points (paper Sec. IV-C).
type CEC struct {
	exp  *cluster.ExpBuffer
	ens  *Ensemble // arbitration target: the deployed short model
	seed int64
	// batchNum decorrelates the clustering seed across batches.
	batchNum func() int
}

// NewCEC builds the mechanism over the shared experience buffer. ens
// supplies the deployed model CEC must beat before displacing it.
func NewCEC(exp *cluster.ExpBuffer, ens *Ensemble, seed int64, batchNum func() int) *CEC {
	return &CEC{exp: exp, ens: ens, seed: seed, batchNum: batchNum}
}

// Name identifies the mechanism.
func (c *CEC) Name() string { return "coherent-experience-clustering" }

// Experience exposes the underlying buffer (checkpointing).
func (c *CEC) Experience() *cluster.ExpBuffer { return c.exp }

// Infer runs coherent experience clustering; ok=false when no labeled
// experience is available yet or CEC loses the arbitration against the
// deployed model.
func (c *CEC) Infer(ctx context.Context, b stream.Batch, obs shift.Observation, tr Trace) (Prediction, bool, error) {
	tr = ensureTrace(tr)
	expX, expY := c.exp.Experience()
	if len(expX) == 0 {
		return Prediction{}, false, nil
	}
	// Per the paper, CEC uses "a small subset of labeled data that is
	// closest to the current batch": under the coherence hypothesis the
	// tail of the previous batch already samples the incoming distribution,
	// and proximity selection finds exactly those points. Distant (pre-
	// shift) experience would pull the joint clustering apart by regime
	// instead of by class.
	m := len(b.X) / 4
	if m < 1 {
		m = 1
	}
	expX, expY = nearestExperience(b.X, expX, expY, m)
	deployed := c.ens.ShortModel()
	classes := deployed.NumClasses()
	// Over-cluster (k = 2c): imbalanced or non-spherical classes occupy
	// several clusters each; the majority vote still maps every cluster to
	// a label.
	tCEC := tr.StageStart()
	pred, st, err := cluster.CECKWithStats(b.X, expX, expY, 2*classes, classes, c.seed+int64(c.batchNum()))
	tr.StageDone(StageCluster, tCEC)
	if err != nil {
		return Prediction{}, false, fmt.Errorf("strategy: CEC: %w", err)
	}
	tr.CEC(st)
	// Arbitration on the coherent experience: the experience points are
	// labeled and (by the coherence hypothesis) drawn from the incoming
	// distribution, so they measure both CEC's cluster/label alignment and
	// whether the deployed model is actually unsuitable. CEC replaces the
	// model only when it wins that comparison (the failure mode of paper
	// Sec. VI-F is exactly CEC losing it).
	deployedPred := deployed.Predict(expX)
	deployedAgree, err := metrics.Accuracy(deployedPred, expY)
	if err != nil {
		return Prediction{}, false, err
	}
	// Both estimates come from a handful of points, so CEC must win by a
	// clear margin before displacing the deployed model.
	if st.Agreement <= deployedAgree+cecMargin {
		return Prediction{}, false, nil
	}
	return Prediction{Pred: pred}, true, nil
}

// Train folds the labeled batch into the coherent experience buffer.
func (c *CEC) Train(ctx context.Context, b stream.Batch, obs shift.Observation, tr Trace) error {
	return c.exp.AddBatch(b.X, b.Y)
}

// nearestExperience returns the m labeled experience points closest to the
// batch's centroid.
func nearestExperience(batch [][]float64, expX [][]float64, expY []int, m int) ([][]float64, []int) {
	if m >= len(expX) {
		return expX, expY
	}
	centroid := make([]float64, len(batch[0]))
	for _, row := range batch {
		for j, v := range row {
			centroid[j] += v
		}
	}
	for j := range centroid {
		centroid[j] /= float64(len(batch))
	}
	type scored struct {
		idx  int
		dist float64
	}
	scores := make([]scored, len(expX))
	for i, x := range expX {
		var d float64
		for j := range x {
			diff := x[j] - centroid[j]
			d += diff * diff
		}
		scores[i] = scored{idx: i, dist: d}
	}
	sort.Slice(scores, func(a, b int) bool { return scores[a].dist < scores[b].dist })
	outX := make([][]float64, m)
	outY := make([]int, m)
	for i := 0; i < m; i++ {
		outX[i] = expX[scores[i].idx]
		outY[i] = expY[scores[i].idx]
	}
	return outX, outY
}
