// Package strategy implements the three adaptive mechanisms of FreewayML as
// interchangeable strategies behind one interface (paper Sec. IV): the
// multi-time-granularity ensemble for slight shifts (Pattern A), coherent
// experience clustering for sudden shifts (Pattern B), and historical
// knowledge reuse for reoccurring shifts (Pattern C). The core learner
// shrinks to detection → dispatch → bookkeeping; everything mechanism-
// specific — the models, the adaptive window, the experience buffer, the
// store match — lives here.
package strategy

import (
	"context"
	"math"
	"time"

	"freewayml/internal/cluster"
	"freewayml/internal/ensemble"
	"freewayml/internal/linalg"
	"freewayml/internal/shift"
	"freewayml/internal/stream"
)

// Stage names used in the freeway_stage_seconds{stage=...} histograms and
// the per-event stage timings. "predict" wraps the whole strategy dispatch,
// so it contains "cluster" and "knowledge_lookup" when those mechanisms run.
// "long_update" covers the window-close training; when Async is on it is
// measured on the background goroutine and lands in the histogram only (the
// batch's trace event has already been emitted by then).
const (
	StageGuard           = "guard"
	StageShiftDetect     = "shift_detect"
	StagePredict         = "predict"
	StageCluster         = "cluster"
	StageKnowledgeLookup = "knowledge_lookup"
	StageShortUpdate     = "short_update"
	StageWindowPush      = "window_push"
	StageLongUpdate      = "long_update"
)

// StageNames lists every stage in pipeline order.
var StageNames = []string{
	StageGuard, StageShiftDetect, StagePredict, StageCluster,
	StageKnowledgeLookup, StageShortUpdate, StageWindowPush, StageLongUpdate,
}

// Prediction is what one strategy produced for a batch: hard labels always,
// a per-sample class distribution when the mechanism yields one (nil for
// CEC, which outputs hard labels).
type Prediction struct {
	Pred  []int
	Proba [][]float64
}

// Trace receives the per-batch decision evidence a strategy generates. The
// core observer implements it; every implementation must tolerate being
// driven from the learner's hot path, and the learner passes a nil-safe
// wrapper so strategies never guard their trace calls.
type Trace interface {
	// StageStart returns the stage start time (zero when tracing is off).
	StageStart() time.Time
	// StageDone closes a stage opened with StageStart.
	StageDone(stage string, t0 time.Time)
	// Weights records the fusion weights the ensemble members received.
	Weights(ws []float64)
	// CEC records the clustering evidence behind a CEC dispatch attempt.
	CEC(st cluster.CECStats)
	// Knowledge records a knowledge-store lookup outcome.
	Knowledge(hit bool, dist float64)
	// WindowClosed marks that this batch's push closed the window.
	WindowClosed()
}

// StageObserver feeds stage durations measured off the request path (the
// asynchronous long-model update) into the stage histograms. The core
// observer implements it; a nil-Observer-backed implementation is a no-op.
type StageObserver interface {
	ObserveStage(stage string, d time.Duration)
}

// nopTrace backs a nil Trace so strategies can call hooks unconditionally.
type nopTrace struct{}

func (nopTrace) StageStart() time.Time       { return time.Time{} }
func (nopTrace) StageDone(string, time.Time) {}
func (nopTrace) Weights([]float64)           {}
func (nopTrace) CEC(cluster.CECStats)        {}
func (nopTrace) Knowledge(bool, float64)     {}
func (nopTrace) WindowClosed()               {}

// ensureTrace substitutes the no-op trace for nil.
func ensureTrace(tr Trace) Trace {
	if tr == nil {
		return nopTrace{}
	}
	return tr
}

// Inferrer is the read side of a strategy: it produces predictions for a
// batch under the detector's observation without mutating strategy state
// that concurrent readers could see torn. ok=false means the mechanism
// cannot serve this batch (no experience yet, no confident knowledge match)
// and the dispatcher falls back per the paper's Fig. 8 chain.
//
// Note the distinction from Snapshot.InferFused: a Strategy's Infer runs on
// the training plane (under the session lock, interleaved with Train and
// free to consult mutable detector state), while Snapshot carries the
// immutable published view the lock-free inference plane reads.
type Inferrer interface {
	Name() string
	Infer(ctx context.Context, b stream.Batch, obs shift.Observation, tr Trace) (Prediction, bool, error)
}

// Trainer is the write side: it folds the labeled batch into the
// mechanism's state. Implementations honour ctx cancellation between (not
// within) model updates.
type Trainer interface {
	Train(ctx context.Context, b stream.Batch, obs shift.Observation, tr Trace) error
}

// Strategy is one adaptive mechanism: the composition of its pure-read
// Inferrer contract and its stateful Trainer contract.
type Strategy interface {
	Inferrer
	Trainer
}

// normalizeDistances rescales the members' finite distances by their mean,
// leaving infinite distances (untrained models) untouched. Degenerate cases
// (no finite distances, zero mean) are left as-is.
func normalizeDistances(members []ensemble.Member) {
	var sum float64
	n := 0
	for _, m := range members {
		if !math.IsInf(m.Distance, 0) {
			sum += m.Distance
			n++
		}
	}
	if n == 0 || sum == 0 {
		return
	}
	mean := sum / float64(n)
	for i := range members {
		if !math.IsInf(members[i].Distance, 0) {
			members[i].Distance /= mean
		}
	}
}

// centroidDistance returns the Euclidean distance, or +Inf when the model
// has no training distribution yet (its kernel weight then vanishes).
func centroidDistance(y, centroid linalg.Vector) float64 {
	if y == nil || centroid == nil || len(y) != len(centroid) {
		return math.Inf(1)
	}
	return y.Distance(centroid)
}

// recordWeights feeds the fusion weights the members will receive to the
// batch trace.
func recordWeights(tr Trace, members []ensemble.Member, sigma float64) {
	ds := make([]float64, len(members))
	for i := range members {
		ds[i] = members[i].Distance
	}
	if ws, err := ensemble.Weights(ds, sigma); err == nil {
		tr.Weights(ws)
	}
}
