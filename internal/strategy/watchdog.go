package strategy

import (
	"errors"
	"math"

	"freewayml/internal/model"
)

// RecoveryEvent records one divergence the watchdog detected and what it
// did about it.
type RecoveryEvent struct {
	// Batch is the stream position at detection time.
	Batch int
	// Model names the affected granularity ("gran0", "gran1", …, "long").
	Model string
	// Reason is what tripped the watchdog: "non-finite loss",
	// "non-finite weights", or "loss explosion".
	Reason string
	// RolledBack reports whether a last-healthy snapshot was restored. It
	// is false only when the model diverged before any healthy update was
	// retained (nothing to roll back to).
	RolledBack bool
}

// WatchdogConfig tunes the divergence watchdog. Zero values select the
// built-in defaults, so a zero WatchdogConfig means "on, defaults".
type WatchdogConfig struct {
	// Disabled turns divergence monitoring and rollback off entirely.
	Disabled bool
	// Ring is how many last-healthy snapshots each model retains
	// (default 3).
	Ring int
	// LossFactor flags a loss explosion when a batch's loss exceeds this
	// multiple of the running healthy-loss mean (default 50).
	LossFactor float64
	// MinUpdates is how many healthy updates must accumulate before
	// loss-explosion checks apply — NaN/Inf checks always apply
	// (default 8).
	MinUpdates int
}

// Validate reports the first invalid watchdog knob.
func (w WatchdogConfig) Validate() error {
	switch {
	case w.Ring < 0:
		return errors.New("core: Watchdog.Ring must be >= 0")
	case w.LossFactor < 0:
		return errors.New("core: Watchdog.LossFactor must be >= 0")
	case w.LossFactor > 0 && w.LossFactor <= 1:
		return errors.New("core: Watchdog.LossFactor must be > 1")
	case w.MinUpdates < 0:
		return errors.New("core: Watchdog.MinUpdates must be >= 0")
	}
	return nil
}

// Watchdog guards one model against divergence. After every update it
// checks the update's loss and the model's weights; while they stay
// healthy it retains a small ring of parameter snapshots, and on NaN/Inf
// weights or a loss explosion it rolls the model back to the newest
// retained snapshot. The paper's stability claim (SI, Eq. 16) assumes the
// learner's weights stay in a sane region; the watchdog enforces that
// assumption against faults SGD cannot recover from on its own.
type Watchdog struct {
	name string
	ring [][]byte // last-healthy snapshots, newest at (next-1+len)%len
	next int
	held int

	meanLoss   float64 // EMA of healthy batch losses
	updates    int
	lossFactor float64
	minUpdates int
}

// Watchdog runtime defaults, applied when the config leaves a knob zero.
const (
	defaultWatchdogRing       = 3
	defaultWatchdogLossFactor = 50.0
	defaultWatchdogMinUpdates = 8
	// watchdogLossEMA smooths the healthy-loss reference.
	watchdogLossEMA = 0.9
)

// NewWatchdog builds a watchdog for the named model.
func NewWatchdog(name string, cfg WatchdogConfig) *Watchdog {
	ring := cfg.Ring
	if ring <= 0 {
		ring = defaultWatchdogRing
	}
	factor := cfg.LossFactor
	if factor <= 0 {
		factor = defaultWatchdogLossFactor
	}
	minUpdates := cfg.MinUpdates
	if minUpdates <= 0 {
		minUpdates = defaultWatchdogMinUpdates
	}
	return &Watchdog{
		name:       name,
		ring:       make([][]byte, ring),
		lossFactor: factor,
		minUpdates: minUpdates,
	}
}

// Check inspects the model right after an update. loss is the update's
// batch loss, or negative when the update path produces none (the
// pre-computing window); weight checks still apply then. A nil return
// means healthy; otherwise the returned event describes the divergence and
// whether the model was rolled back.
func (w *Watchdog) Check(m model.Model, loss float64, batch int) *RecoveryEvent {
	reason := ""
	switch {
	case math.IsNaN(loss) || math.IsInf(loss, 0):
		reason = "non-finite loss"
	case m.Net() != nil && !m.Net().ParamsFinite():
		reason = "non-finite weights"
	case loss >= 0 && w.updates >= w.minUpdates && loss > w.lossFactor*(w.meanLoss+1e-6):
		reason = "loss explosion"
	}
	if reason == "" {
		w.updates++
		if loss >= 0 {
			if w.updates == 1 {
				w.meanLoss = loss
			} else {
				w.meanLoss = watchdogLossEMA*w.meanLoss + (1-watchdogLossEMA)*loss
			}
		}
		if snap, err := m.Snapshot(); err == nil {
			w.push(snap)
		}
		return nil
	}

	ev := &RecoveryEvent{Batch: batch, Model: w.name, Reason: reason}
	if snap := w.newest(); snap != nil {
		if err := m.Restore(snap); err == nil {
			ev.RolledBack = true
		}
	}
	return ev
}

// push retains a healthy snapshot, evicting the oldest when the ring is
// full.
func (w *Watchdog) push(snap []byte) {
	w.ring[w.next] = snap
	w.next = (w.next + 1) % len(w.ring)
	if w.held < len(w.ring) {
		w.held++
	}
}

// newest returns the most recently retained snapshot, or nil when none.
func (w *Watchdog) newest() []byte {
	if w.held == 0 {
		return nil
	}
	return w.ring[(w.next-1+len(w.ring))%len(w.ring)]
}
