package strategy

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"freewayml/internal/ensemble"
	"freewayml/internal/knowledge"
	"freewayml/internal/linalg"
	"freewayml/internal/model"
	"freewayml/internal/nn"
	"freewayml/internal/pca"
	"freewayml/internal/shift"
)

// SnapshotMember is one ensemble member frozen at publication time: a deep
// model clone plus the centroid of its training distribution in shift space.
// Neither is mutated after the snapshot is built — the training plane clones
// before publishing, so readers share the structs freely.
type SnapshotMember struct {
	Model    model.Model
	Centroid linalg.Vector
	// Engine is the member compiled onto the configured speed tier (nil on
	// the f64 oracle tier, for model families without a network substrate,
	// and when compilation fails — all of which fall back to Model). Like
	// the model's forward scratch it is single-reader, serialized by the
	// snapshot's ComputeMu. The f64 Model is always retained alongside the
	// engine so the oracle stays available for differential checks.
	Engine *nn.InferEngine
}

// proba runs one batched forward over rows through the member's speed-tier
// engine when it has one, the f64 model otherwise.
func (m SnapshotMember) proba(rows [][]float64) ([][]float64, error) {
	if m.Engine != nil {
		return m.Engine.PredictProba64(rows)
	}
	return m.Model.PredictProba(rows), nil
}

// proba32 is proba for natively narrow rows. Members without an engine widen
// through the shared f64 staging rows the caller lazily materializes.
func (m SnapshotMember) proba32(rows32 [][]float32, widen func() [][]float64) ([][]float64, error) {
	if m.Engine != nil {
		return m.Engine.PredictProba32(rows32)
	}
	return m.Model.PredictProba(widen()), nil
}

// Snapshot is the immutable inference view the training plane publishes
// after every batch. It carries everything the paper's Eq. 12-14 fusion
// needs — the granularity models with their centroids (short first, long
// last), the kernel bandwidth, and the PCA projection that maps a batch mean
// into shift space — plus read-only observability context: the lock-free
// knowledge-match index, the CEC experience size, and the pattern of the
// batch that produced the snapshot.
//
// A Snapshot must never be mutated after publication. The infer plane loads
// the current pointer atomically and may keep using a superseded snapshot
// for the duration of one request; the staleness bound is one training
// batch (plus one asynchronous long-model update, see DESIGN.md).
type Snapshot struct {
	Members []SnapshotMember // granularities in order, long-term model last
	Sigma   float64
	Proj    *pca.Model // nil until the detector finishes warm-up

	// Knowledge is the shared match index; Match/NearestDistance are
	// lock-free reads. Nil when the learner has no store.
	Knowledge *knowledge.Store
	// Experience is the CEC experience-buffer size at publication.
	Experience int
	// Pattern is the shift pattern of the batch that produced this
	// snapshot (PatternWarmup before the detector is ready).
	Pattern shift.Pattern

	// Batch is the training batch counter at publication; Seq increments
	// once per publication (checkpoint restores also publish).
	Batch       int
	Seq         uint64
	PublishedAt time.Time
	Dim         int
	Classes     int

	// Tier is the kernel tier the member engines were compiled for (TierF64
	// when engines are absent). QuantMats counts int8-quantized weight
	// matrices across members; QuantScaleMin/Max aggregate their nonzero
	// absmax row scales (0 outside the int8 tier) — surfaced per batch in
	// the decision trace so tier choices stay auditable.
	Tier          linalg.KernelTier
	QuantMats     int
	QuantScaleMin float64
	QuantScaleMax float64

	// ComputeMu serializes forward passes across every snapshot of one
	// learner. The member *parameters* are immutable, but a model's forward
	// pass stages rows into model-owned scratch, and publication reuses an
	// unchanged member's clone across consecutive snapshots — so two
	// concurrent readers (even of different snapshot generations) would race
	// on that scratch without it. The mutex belongs to the read plane alone:
	// the training path never takes it, so a reader waits only behind other
	// readers, never behind training, checkpointing, or eviction.
	ComputeMu *sync.Mutex
}

// InferOutput is the pure inference result for one group of rows.
type InferOutput struct {
	Pred  []int
	Proba [][]float64
	// Warmup reports that only the short model answered (no projection yet).
	Warmup bool
	// Weights are the normalized fusion weights the members received
	// (nil during warm-up).
	Weights []float64
	// KnowledgeDist is the distance to the nearest stored concept centroid
	// (observability only; -1 when no index or no projection).
	KnowledgeDist float64
}

// Age returns how long ago the snapshot was published.
func (s *Snapshot) Age() time.Duration { return time.Since(s.PublishedAt) }

// InferBatch runs pure inference over one group of rows. It is exactly
// InferFused with a single group — the fused path is bitwise-identical by
// construction.
func (s *Snapshot) InferBatch(x [][]float64) (InferOutput, error) {
	outs, err := s.InferFused([][][]float64{x})
	if err != nil {
		return InferOutput{}, err
	}
	return outs[0], nil
}

// InferFused runs one fused inference pass over many groups of rows (one
// group per waiting request, possibly from different streams sharing this
// snapshot — or, at the serve layer, per-stream groups each against their
// own snapshot). All groups' rows are concatenated and each member model
// runs a single batched forward pass; per-group fusion then slices the
// shared probability output. Because the GEMM kernels accumulate each
// output row independently of the total row count (see internal/linalg),
// the fused pass is bitwise-identical to inferring every group separately.
func (s *Snapshot) InferFused(groups [][][]float64) ([]InferOutput, error) {
	if s == nil {
		return nil, errors.New("strategy: nil snapshot")
	}
	if len(s.Members) == 0 {
		return nil, errors.New("strategy: snapshot has no members")
	}
	total := 0
	for _, g := range groups {
		for _, row := range g {
			if len(row) != s.Dim {
				return nil, fmt.Errorf("strategy: row has %d features, want %d", len(row), s.Dim)
			}
		}
		total += len(g)
	}
	all := make([][]float64, 0, total)
	for _, g := range groups {
		all = append(all, g...)
	}
	outs := make([]InferOutput, len(groups))

	if s.ComputeMu != nil {
		s.ComputeMu.Lock()
		defer s.ComputeMu.Unlock()
	}

	if s.Proj == nil {
		// Warm-up: the paper trains and serves the short model alone until
		// the detector's PCA is fitted.
		proba, err := s.Members[0].proba(all)
		if err != nil {
			return nil, err
		}
		lo := 0
		for gi, g := range groups {
			p := proba[lo : lo+len(g)]
			outs[gi] = InferOutput{Pred: argmaxRows(p), Proba: p, Warmup: true, KnowledgeDist: -1}
			lo += len(g)
		}
		return outs, nil
	}

	// One batched forward pass per member over every group's rows.
	probas := make([][][]float64, len(s.Members))
	for i, m := range s.Members {
		p, err := m.proba(all)
		if err != nil {
			return nil, err
		}
		probas[i] = p
	}

	lo := 0
	for gi, g := range groups {
		hi := lo + len(g)
		mean, err := meanOfRows(g)
		if err != nil {
			return nil, err
		}
		out, err := s.fuseGroup(probas, lo, hi, mean)
		if err != nil {
			return nil, err
		}
		outs[gi] = out
		lo = hi
	}
	return outs, nil
}

// InferFused32 is InferFused for natively narrow rows: f32 wire frames flow
// here through the coalescer without ever widening to f64 when the members
// carry speed-tier engines. Members without an engine (non-network families,
// or the f64 oracle tier) widen the concatenated rows once, lazily, shared
// across all such members — the fallback pays the staging copy the native
// path exists to avoid, but keeps mixed ensembles correct. Group means for
// the Eq. 12-14 fusion are always accumulated in f64, so the fusion weights
// differ from the f64 path only by the one-time f32 representation of the
// inputs themselves.
func (s *Snapshot) InferFused32(groups [][][]float32) ([]InferOutput, error) {
	if s == nil {
		return nil, errors.New("strategy: nil snapshot")
	}
	if len(s.Members) == 0 {
		return nil, errors.New("strategy: snapshot has no members")
	}
	total := 0
	for _, g := range groups {
		for _, row := range g {
			if len(row) != s.Dim {
				return nil, fmt.Errorf("strategy: row has %d features, want %d", len(row), s.Dim)
			}
		}
		total += len(g)
	}
	all := make([][]float32, 0, total)
	for _, g := range groups {
		all = append(all, g...)
	}
	var wide [][]float64
	widen := func() [][]float64 {
		if wide == nil {
			flat := make([]float64, total*s.Dim)
			wide = make([][]float64, total)
			for i, r := range all {
				w := flat[i*s.Dim : (i+1)*s.Dim : (i+1)*s.Dim]
				for j, v := range r {
					w[j] = float64(v)
				}
				wide[i] = w
			}
		}
		return wide
	}
	outs := make([]InferOutput, len(groups))

	if s.ComputeMu != nil {
		s.ComputeMu.Lock()
		defer s.ComputeMu.Unlock()
	}

	if s.Proj == nil {
		proba, err := s.Members[0].proba32(all, widen)
		if err != nil {
			return nil, err
		}
		lo := 0
		for gi, g := range groups {
			p := proba[lo : lo+len(g)]
			outs[gi] = InferOutput{Pred: argmaxRows(p), Proba: p, Warmup: true, KnowledgeDist: -1}
			lo += len(g)
		}
		return outs, nil
	}

	probas := make([][][]float64, len(s.Members))
	for i, m := range s.Members {
		p, err := m.proba32(all, widen)
		if err != nil {
			return nil, err
		}
		probas[i] = p
	}

	lo := 0
	for gi, g := range groups {
		hi := lo + len(g)
		mean, err := meanOfRows32(g)
		if err != nil {
			return nil, err
		}
		out, err := s.fuseGroup(probas, lo, hi, mean)
		if err != nil {
			return nil, err
		}
		outs[gi] = out
		lo = hi
	}
	return outs, nil
}

// meanOfRows returns the column mean of the group (nil for an empty group).
func meanOfRows(rows [][]float64) (linalg.Vector, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	points := make([]linalg.Vector, len(rows))
	for i, r := range rows {
		points[i] = r
	}
	mean, err := linalg.Mean(points)
	if err != nil {
		return nil, fmt.Errorf("strategy: infer mean: %w", err)
	}
	return mean, nil
}

// meanOfRows32 accumulates the column mean of narrow rows in float64, so the
// shift-space projection sees the same arithmetic as the f64 path up to the
// f32 representation of the inputs.
func meanOfRows32(rows [][]float32) (linalg.Vector, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	mean := make(linalg.Vector, len(rows[0]))
	for _, r := range rows {
		for j, v := range r {
			mean[j] += float64(v)
		}
	}
	n := float64(len(rows))
	for j := range mean {
		mean[j] /= n
	}
	return mean, nil
}

// fuseGroup projects the group's pre-computed column mean into shift space,
// weights each member by the Gaussian kernel of its centroid distance
// (Eq. 12-14), and fuses the members' probability slices for the group's row
// range. mean is nil for an empty group.
func (s *Snapshot) fuseGroup(probas [][][]float64, lo, hi int, mean linalg.Vector) (InferOutput, error) {
	var ybar linalg.Vector
	if mean != nil {
		var err error
		ybar, err = s.Proj.ProjectMean(mean)
		if err != nil {
			return InferOutput{}, fmt.Errorf("strategy: infer projection: %w", err)
		}
	}
	members := make([]ensemble.Member, len(s.Members))
	for i, m := range s.Members {
		members[i] = ensemble.Member{
			Proba:    probas[i][lo:hi],
			Distance: centroidDistance(ybar, m.Centroid),
		}
	}
	normalizeDistances(members)
	ds := make([]float64, len(members))
	for i := range members {
		ds[i] = members[i].Distance
	}
	weights, err := ensemble.Weights(ds, s.Sigma)
	if err != nil {
		weights = nil
	}
	fused, err := ensemble.Fuse(members, s.Sigma)
	if err != nil {
		return InferOutput{}, fmt.Errorf("strategy: infer fusion: %w", err)
	}
	kdist := -1.0
	if s.Knowledge != nil && ybar != nil {
		if d := s.Knowledge.NearestDistance(ybar); !math.IsInf(d, 0) && !math.IsNaN(d) {
			kdist = d
		}
	}
	return InferOutput{
		Pred:          argmaxRows(fused),
		Proba:         fused,
		Weights:       weights,
		KnowledgeDist: kdist,
	}, nil
}
