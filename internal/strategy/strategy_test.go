package strategy

import (
	"math"
	"testing"

	"freewayml/internal/ensemble"
	"freewayml/internal/linalg"
)

func TestNormalizeDistances(t *testing.T) {
	inf := math.Inf(1)
	members := []ensemble.Member{
		{Distance: 1}, {Distance: 3}, {Distance: inf},
	}
	normalizeDistances(members)
	// Finite distances are rescaled by their mean (2); the untrained
	// member's +Inf must survive so its kernel weight vanishes.
	if members[0].Distance != 0.5 || members[1].Distance != 1.5 {
		t.Errorf("normalized = %v, %v; want 0.5, 1.5", members[0].Distance, members[1].Distance)
	}
	if !math.IsInf(members[2].Distance, 1) {
		t.Errorf("infinite distance rescaled to %v", members[2].Distance)
	}

	// Degenerate inputs are left untouched.
	all := []ensemble.Member{{Distance: inf}, {Distance: inf}}
	normalizeDistances(all)
	if !math.IsInf(all[0].Distance, 1) || !math.IsInf(all[1].Distance, 1) {
		t.Error("all-infinite members were rescaled")
	}
	zero := []ensemble.Member{{Distance: 0}, {Distance: 0}}
	normalizeDistances(zero)
	if zero[0].Distance != 0 || zero[1].Distance != 0 {
		t.Error("zero-mean members were rescaled")
	}
}

func TestCentroidDistance(t *testing.T) {
	a := linalg.Vector{0, 3}
	b := linalg.Vector{4, 0}
	if d := centroidDistance(a, b); d != 5 {
		t.Errorf("distance = %v, want 5", d)
	}
	// Missing or shape-mismatched centroids mean "untrained": +Inf.
	for _, tc := range []struct {
		y, c linalg.Vector
	}{
		{nil, b}, {a, nil}, {a, linalg.Vector{1}},
	} {
		if d := centroidDistance(tc.y, tc.c); !math.IsInf(d, 1) {
			t.Errorf("centroidDistance(%v, %v) = %v, want +Inf", tc.y, tc.c, d)
		}
	}
}

func TestEnsureTraceNilSafe(t *testing.T) {
	tr := ensureTrace(nil)
	if tr == nil {
		t.Fatal("ensureTrace(nil) returned nil")
	}
	// The no-op trace must absorb every hook without panicking, so
	// strategies never guard their trace calls.
	t0 := tr.StageStart()
	tr.StageDone(StagePredict, t0)
	tr.Weights([]float64{0.5, 0.5})
	tr.Knowledge(true, 0.1)
	tr.WindowClosed()
}

func TestStageNamesCoverConstants(t *testing.T) {
	want := []string{
		StageGuard, StageShiftDetect, StagePredict, StageCluster,
		StageKnowledgeLookup, StageShortUpdate, StageWindowPush, StageLongUpdate,
	}
	if len(StageNames) != len(want) {
		t.Fatalf("StageNames has %d entries, want %d", len(StageNames), len(want))
	}
	for i, s := range want {
		if StageNames[i] != s {
			t.Errorf("StageNames[%d] = %q, want %q", i, StageNames[i], s)
		}
	}
}
