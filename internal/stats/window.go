package stats

// SlidingWindow keeps the most recent capacity float64 observations in
// arrival order. It backs the shift detector's history of recent shift
// distances (the k batches compared in Eq. 8-10).
type SlidingWindow struct {
	buf   []float64
	head  int // index of the oldest element
	count int
}

// NewSlidingWindow returns a window holding at most capacity observations.
// It panics if capacity is not positive.
func NewSlidingWindow(capacity int) *SlidingWindow {
	if capacity <= 0 {
		panic("stats: SlidingWindow capacity must be positive")
	}
	return &SlidingWindow{buf: make([]float64, capacity)}
}

// Push appends x, evicting the oldest observation when full.
func (w *SlidingWindow) Push(x float64) {
	if w.count < len(w.buf) {
		w.buf[(w.head+w.count)%len(w.buf)] = x
		w.count++
		return
	}
	w.buf[w.head] = x
	w.head = (w.head + 1) % len(w.buf)
}

// Len returns the number of stored observations.
func (w *SlidingWindow) Len() int { return w.count }

// Cap returns the window capacity.
func (w *SlidingWindow) Cap() int { return len(w.buf) }

// NewestFirst returns the observations ordered newest to oldest, matching
// the indexing of Eq. 8 (d_{t-1}, d_{t-2}, …).
func (w *SlidingWindow) NewestFirst() []float64 {
	out := make([]float64, w.count)
	for i := 0; i < w.count; i++ {
		out[i] = w.buf[(w.head+w.count-1-i)%len(w.buf)]
	}
	return out
}

// OldestFirst returns the observations in arrival order.
func (w *SlidingWindow) OldestFirst() []float64 {
	out := make([]float64, w.count)
	for i := 0; i < w.count; i++ {
		out[i] = w.buf[(w.head+i)%len(w.buf)]
	}
	return out
}

// Reset discards all observations.
func (w *SlidingWindow) Reset() {
	w.head, w.count = 0, 0
}
