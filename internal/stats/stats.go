// Package stats provides the scalar statistics FreewayML's shift detector
// and adaptive streaming window rely on: weighted means and standard
// deviations over recent shift distances (Eq. 8-10 of the paper), the
// inversion-count "disorder" of a distance ranking (Eq. 11), z-scores, and a
// small set of streaming accumulators.
package stats

import (
	"errors"
	"math"
)

// ErrEmpty is returned by aggregate functions given no observations.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs (1/n normalization,
// matching the paper's Eq. 9).
func StdDev(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs))), nil
}

// WeightedMean implements Eq. 8: μ_d = Σ wᵢ·dᵢ / Σ wᵢ. The two slices must
// have equal nonzero length and the weights must have a positive sum.
func WeightedMean(xs, ws []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) != len(ws) {
		return 0, errors.New("stats: weights length mismatch")
	}
	var num, den float64
	for i, x := range xs {
		num += ws[i] * x
		den += ws[i]
	}
	if den <= 0 {
		return 0, errors.New("stats: non-positive weight sum")
	}
	return num / den, nil
}

// StdDevAround implements Eq. 9: the root-mean-square deviation of xs around
// a given center (typically the weighted mean from Eq. 8).
func StdDevAround(xs []float64, center float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		d := x - center
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs))), nil
}

// ZScore implements Eq. 10: M = (x − μ) / σ. A zero σ yields +Inf for x > μ,
// −Inf for x < μ, and 0 for x == μ, so that a genuinely novel distance after
// a flat history still classifies as a sudden shift.
func ZScore(x, mu, sigma float64) float64 {
	if sigma == 0 {
		switch {
		case x > mu:
			return math.Inf(1)
		case x < mu:
			return math.Inf(-1)
		default:
			return 0
		}
	}
	return (x - mu) / sigma
}

// RecencyWeights returns k weights for Eq. 8 where index 0 is the most
// recent observation. Weights decay geometrically by factor decay per step
// back in time; decay must be in (0, 1]. decay == 1 gives uniform weights.
func RecencyWeights(k int, decay float64) []float64 {
	if k <= 0 {
		return nil
	}
	if decay <= 0 || decay > 1 {
		panic("stats: RecencyWeights decay must be in (0, 1]")
	}
	ws := make([]float64, k)
	w := 1.0
	for i := 0; i < k; i++ {
		ws[i] = w
		w *= decay
	}
	return ws
}

// Inversions implements the paper's Eq. 11 disorder measure: the number of
// pairs (i, j) with i < j and τᵢ > τⱼ in the ranking τ. It runs in
// O(n log n) via merge-sort counting so the ASW can evaluate disorder on
// every incoming batch.
func Inversions(ranks []int) int {
	if len(ranks) < 2 {
		return 0
	}
	buf := make([]int, len(ranks))
	work := make([]int, len(ranks))
	copy(work, ranks)
	return mergeCount(work, buf, 0, len(work))
}

func mergeCount(a, buf []int, lo, hi int) int {
	if hi-lo < 2 {
		return 0
	}
	mid := (lo + hi) / 2
	inv := mergeCount(a, buf, lo, mid) + mergeCount(a, buf, mid, hi)
	i, j, k := lo, mid, lo
	for i < mid && j < hi {
		if a[i] <= a[j] {
			buf[k] = a[i]
			i++
		} else {
			buf[k] = a[j]
			inv += mid - i
			j++
		}
		k++
	}
	for i < mid {
		buf[k] = a[i]
		i, k = i+1, k+1
	}
	for j < hi {
		buf[k] = a[j]
		j, k = j+1, k+1
	}
	copy(a[lo:hi], buf[lo:hi])
	return inv
}

// NormalizedDisorder maps an inversion count over n elements to [0, 1] by
// dividing by the maximum possible n(n−1)/2. Sequences shorter than 2 have
// disorder 0.
func NormalizedDisorder(ranks []int) float64 {
	n := len(ranks)
	if n < 2 {
		return 0
	}
	maxInv := n * (n - 1) / 2
	return float64(Inversions(ranks)) / float64(maxInv)
}

// Running accumulates a mean and variance incrementally (Welford's
// algorithm). The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the running mean (0 before any observation).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the running population variance (0 with fewer than 2 points).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the running population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Var()) }

// Reset clears the accumulator.
func (r *Running) Reset() { *r = Running{} }
