package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil || m != 5 {
		t.Fatalf("Mean = %v, %v", m, err)
	}
	s, err := StdDev(xs)
	if err != nil || math.Abs(s-2) > 1e-12 {
		t.Fatalf("StdDev = %v, %v", s, err)
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) err = %v", err)
	}
	if _, err := StdDev(nil); err != ErrEmpty {
		t.Errorf("StdDev(nil) err = %v", err)
	}
}

func TestWeightedMean(t *testing.T) {
	m, err := WeightedMean([]float64{1, 3}, []float64{3, 1})
	if err != nil || math.Abs(m-1.5) > 1e-12 {
		t.Fatalf("WeightedMean = %v, %v", m, err)
	}
	if _, err := WeightedMean(nil, nil); err != ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
	if _, err := WeightedMean([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := WeightedMean([]float64{1}, []float64{0}); err == nil {
		t.Error("zero weight sum should error")
	}
}

func TestWeightedMeanUniformEqualsMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ws := []float64{1, 1, 1, 1}
	wm, _ := WeightedMean(xs, ws)
	m, _ := Mean(xs)
	if math.Abs(wm-m) > 1e-12 {
		t.Errorf("uniform WeightedMean %v != Mean %v", wm, m)
	}
}

func TestStdDevAround(t *testing.T) {
	s, err := StdDevAround([]float64{1, 3}, 2)
	if err != nil || math.Abs(s-1) > 1e-12 {
		t.Fatalf("StdDevAround = %v, %v", s, err)
	}
	if _, err := StdDevAround(nil, 0); err != ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
}

func TestZScore(t *testing.T) {
	if z := ZScore(3, 1, 1); z != 2 {
		t.Errorf("ZScore = %v", z)
	}
	if z := ZScore(5, 1, 0); !math.IsInf(z, 1) {
		t.Errorf("ZScore with σ=0, x>μ = %v, want +Inf", z)
	}
	if z := ZScore(-5, 1, 0); !math.IsInf(z, -1) {
		t.Errorf("ZScore with σ=0, x<μ = %v, want -Inf", z)
	}
	if z := ZScore(1, 1, 0); z != 0 {
		t.Errorf("ZScore with σ=0, x=μ = %v, want 0", z)
	}
}

func TestRecencyWeights(t *testing.T) {
	ws := RecencyWeights(3, 0.5)
	want := []float64{1, 0.5, 0.25}
	for i := range want {
		if math.Abs(ws[i]-want[i]) > 1e-12 {
			t.Errorf("ws[%d] = %v, want %v", i, ws[i], want[i])
		}
	}
	if RecencyWeights(0, 0.5) != nil {
		t.Error("k=0 should return nil")
	}
	defer func() {
		if recover() == nil {
			t.Error("decay > 1 should panic")
		}
	}()
	RecencyWeights(3, 1.5)
}

func TestInversionsKnownCases(t *testing.T) {
	cases := []struct {
		ranks []int
		want  int
	}{
		{nil, 0},
		{[]int{1}, 0},
		{[]int{1, 2, 3}, 0},
		{[]int{3, 2, 1}, 3},
		{[]int{2, 1, 3}, 1},
		{[]int{1, 3, 2, 4}, 1},
		{[]int{4, 3, 2, 1}, 6},
	}
	for _, c := range cases {
		if got := Inversions(c.ranks); got != c.want {
			t.Errorf("Inversions(%v) = %d, want %d", c.ranks, got, c.want)
		}
	}
}

// Property: merge-count inversions match the O(n²) brute force.
func TestInversionsMatchesBruteForceProperty(t *testing.T) {
	f := func(xs []int8) bool {
		ranks := make([]int, len(xs))
		for i, x := range xs {
			ranks[i] = int(x)
		}
		brute := 0
		for i := 0; i < len(ranks); i++ {
			for j := i + 1; j < len(ranks); j++ {
				if ranks[i] > ranks[j] {
					brute++
				}
			}
		}
		return Inversions(ranks) == brute
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Inversions does not mutate its input.
func TestInversionsDoesNotMutate(t *testing.T) {
	ranks := []int{5, 3, 4, 1, 2}
	orig := append([]int(nil), ranks...)
	Inversions(ranks)
	for i := range ranks {
		if ranks[i] != orig[i] {
			t.Fatal("Inversions mutated its input")
		}
	}
}

func TestNormalizedDisorderBounds(t *testing.T) {
	if d := NormalizedDisorder([]int{1, 2, 3, 4}); d != 0 {
		t.Errorf("sorted disorder = %v", d)
	}
	if d := NormalizedDisorder([]int{4, 3, 2, 1}); d != 1 {
		t.Errorf("reversed disorder = %v", d)
	}
	if d := NormalizedDisorder([]int{7}); d != 0 {
		t.Errorf("singleton disorder = %v", d)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(30)
		ranks := rng.Perm(n)
		d := NormalizedDisorder(ranks)
		if d < 0 || d > 1 {
			t.Fatalf("disorder %v out of [0,1] for %v", d, ranks)
		}
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 100)
	var r Running
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
		r.Add(xs[i])
	}
	m, _ := Mean(xs)
	s, _ := StdDev(xs)
	if math.Abs(r.Mean()-m) > 1e-9 {
		t.Errorf("Running.Mean %v != %v", r.Mean(), m)
	}
	if math.Abs(r.StdDev()-s) > 1e-9 {
		t.Errorf("Running.StdDev %v != %v", r.StdDev(), s)
	}
	if r.N() != 100 {
		t.Errorf("N = %d", r.N())
	}
	r.Reset()
	if r.N() != 0 || r.Mean() != 0 || r.Var() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestRunningFewPoints(t *testing.T) {
	var r Running
	if r.Var() != 0 || r.StdDev() != 0 {
		t.Error("empty Running should have zero variance")
	}
	r.Add(5)
	if r.Mean() != 5 || r.Var() != 0 {
		t.Errorf("single point: mean=%v var=%v", r.Mean(), r.Var())
	}
}

func TestSlidingWindowOrdering(t *testing.T) {
	w := NewSlidingWindow(3)
	for _, x := range []float64{1, 2, 3, 4, 5} {
		w.Push(x)
	}
	if w.Len() != 3 || w.Cap() != 3 {
		t.Fatalf("Len=%d Cap=%d", w.Len(), w.Cap())
	}
	nf := w.NewestFirst()
	if nf[0] != 5 || nf[1] != 4 || nf[2] != 3 {
		t.Errorf("NewestFirst = %v", nf)
	}
	of := w.OldestFirst()
	if of[0] != 3 || of[1] != 4 || of[2] != 5 {
		t.Errorf("OldestFirst = %v", of)
	}
	w.Reset()
	if w.Len() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestSlidingWindowPartialFill(t *testing.T) {
	w := NewSlidingWindow(5)
	w.Push(1)
	w.Push(2)
	nf := w.NewestFirst()
	if len(nf) != 2 || nf[0] != 2 || nf[1] != 1 {
		t.Errorf("NewestFirst = %v", nf)
	}
}

func TestSlidingWindowPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSlidingWindow(0)
}

// Property: NewestFirst is the reverse of OldestFirst.
func TestSlidingWindowReverseProperty(t *testing.T) {
	f := func(xs []float64, capSeed uint8) bool {
		capacity := int(capSeed%10) + 1
		w := NewSlidingWindow(capacity)
		for _, x := range xs {
			w.Push(x)
		}
		nf := w.NewestFirst()
		of := w.OldestFirst()
		if len(nf) != len(of) {
			return false
		}
		rev := append([]float64(nil), of...)
		sort.SliceStable(rev, func(i, j int) bool { return false }) // keep order; manual reverse below
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		for i := range nf {
			if nf[i] != rev[i] && !(math.IsNaN(nf[i]) && math.IsNaN(rev[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
