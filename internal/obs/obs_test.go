package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d", c.Value())
	}
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
}

func TestGaugeBasics(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Fatalf("zero gauge = %v", g.Value())
	}
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Errorf("gauge = %v", g.Value())
	}
	g.Set(-1)
	if g.Value() != -1 {
		t.Errorf("gauge = %v", g.Value())
	}
}

func TestHistogramCountsAndSum(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500, math.NaN()} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4 (NaN dropped)", h.Count())
	}
	if got := h.Sum(); math.Abs(got-555.5) > 1e-9 {
		t.Errorf("sum = %v, want 555.5", got)
	}
	counts, total := h.snapshot()
	want := []int64{1, 1, 1, 1}
	if total != 4 {
		t.Errorf("total = %d", total)
	}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, counts[i], w)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30, 40})
	// 100 uniform observations over (0, 40]: quantiles interpolate to ~40q.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.4)
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 20, 1},
		{0.95, 38, 1},
		{0.99, 39.6, 1},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%v) = %v, want ~%v", tc.q, got, tc.want)
		}
	}
	if NewHistogram(nil).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	// Overflow observations clamp to the top finite bound.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(1000)
	if got := h2.Quantile(0.5); got != 2 {
		t.Errorf("overflow quantile = %v, want clamp to 2", got)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-ascending bounds should panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestRegistryIdempotentAndTyped(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "help", "k", "v")
	c2 := r.Counter("x_total", "other help", "k", "v")
	if c1 != c2 {
		t.Error("same name+labels should return the same counter")
	}
	c3 := r.Counter("x_total", "", "k", "w")
	if c1 == c3 {
		t.Error("different labels should return a different series")
	}
	if n := r.NumSeries(); n != 2 {
		t.Errorf("NumSeries = %d, want 2", n)
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", nil)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if s := h.Sum(); math.Abs(s-workers*per*0.001) > 1e-6 {
		t.Errorf("histogram sum = %v", s)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExponentialBuckets(1, 2, 5)
	want := []float64{1, 2, 4, 8, 16}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExponentialBuckets[%d] = %v, want %v", i, exp[i], want[i])
		}
	}
	lin := LinearBuckets(0.1, 0.1, 10)
	if len(lin) != 10 || lin[0] != 0.1 || math.Abs(lin[9]-1.0) > 1e-12 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	// Both layouts must satisfy NewHistogram's ascending contract.
	NewHistogram(exp)
	NewHistogram(lin)
	for _, fn := range []func(){
		func() { ExponentialBuckets(0, 2, 3) },
		func() { ExponentialBuckets(1, 1, 3) },
		func() { ExponentialBuckets(1, 2, 0) },
		func() { LinearBuckets(0, 0, 3) },
		func() { LinearBuckets(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid bucket spec did not panic")
				}
			}()
			fn()
		}()
	}
}
