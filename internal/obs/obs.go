// Package obs is FreewayML's dependency-free observability core: atomic
// counters and gauges, fixed-bucket latency histograms with quantile
// estimation, a process-wide named registry with Prometheus text
// exposition, and a bounded ring buffer of per-batch decision traces.
//
// The package uses only the standard library and is safe for concurrent
// use: the hot path (Counter.Inc, Gauge.Set, Histogram.Observe) is a
// handful of atomic operations, cheap enough to leave enabled in
// production serving — the overhead gate in internal/core's
// BenchmarkLearnerInstrumented holds the instrumented pipeline within
// noise of the uninstrumented one.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing value (Prometheus counter).
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down (Prometheus gauge).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed cumulative-style buckets
// (stored as per-bucket counts; exposition emits cumulative counts per the
// Prometheus text format) plus a running sum and count. The bucket bounds
// are upper-inclusive like Prometheus `le`.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; an implicit +Inf bucket follows
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 sum maintained by CAS
}

// DefLatencyBuckets spans 10µs to ~10s in roughly ×2.5 steps — wide enough
// for both the µs-scale kernel stages and second-scale window closes.
var DefLatencyBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1, 1, 2.5, 5, 10,
}

// ExponentialBuckets returns n strictly ascending upper bounds starting at
// start and multiplying by factor — the layout for quantities that span
// orders of magnitude (coalesce batch sizes, queue depths). start must be
// positive, factor > 1, n >= 1; violations panic, as in NewHistogram.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExponentialBuckets requires start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n strictly ascending upper bounds starting at start
// with the given positive step — the layout for bounded quantities like
// fill ratios. step must be positive, n >= 1; violations panic.
func LinearBuckets(start, step float64, n int) []float64 {
	if step <= 0 || n < 1 {
		panic("obs: LinearBuckets requires step > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start += step
	}
	return out
}

// NewHistogram builds a standalone (unregistered) histogram over the given
// ascending upper bounds; nil selects DefLatencyBuckets. Non-ascending
// bounds panic: bucket layout is a programming decision, not input.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// snapshot returns per-bucket counts (len(bounds)+1 entries, last = +Inf
// overflow) and the total, read bucket-by-bucket without a global lock —
// exposition tolerates the skew of concurrent observers.
func (h *Histogram) snapshot() ([]int64, int64) {
	counts := make([]int64, len(h.buckets))
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return counts, total
}

// Quantile estimates the q-th quantile (0 < q < 1) by linear interpolation
// within the bucket that spans the target rank, the same estimate a
// Prometheus histogram_quantile produces. Values in the +Inf overflow
// bucket clamp to the highest finite bound. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	counts, total := h.snapshot()
	if total == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(h.bounds) { // +Inf bucket: clamp
			if len(h.bounds) == 0 {
				return 0
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		prev := float64(cum - c)
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}
