package obs

import (
	"strings"
	"testing"
)

func TestMergeExpositionsLabelsWorkerSeries(t *testing.T) {
	router := "# HELP freeway_router_requests_total forwarded\n" +
		"# TYPE freeway_router_requests_total counter\n" +
		"freeway_router_requests_total 7\n"
	w1 := "# HELP freeway_http_requests_total served\n" +
		"# TYPE freeway_http_requests_total counter\n" +
		"freeway_http_requests_total 3\n" +
		"# TYPE fw_stage_seconds histogram\n" +
		"fw_stage_seconds_bucket{stage=\"guard\",le=\"+Inf\"} 2\n" +
		"fw_stage_seconds_sum{stage=\"guard\"} 0.5\n" +
		"fw_stage_seconds_count{stage=\"guard\"} 2\n"
	w2 := "# HELP freeway_http_requests_total served\n" +
		"# TYPE freeway_http_requests_total counter\n" +
		"freeway_http_requests_total 4\n"

	var sb strings.Builder
	err := MergeExpositions(&sb, []ExpositionPart{
		{Worker: "", Text: router},
		{Worker: "w1:1", Text: w1},
		{Worker: "w2:2", Text: w2},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"freeway_router_requests_total 7",
		`freeway_http_requests_total{worker="w1:1"} 3`,
		`freeway_http_requests_total{worker="w2:2"} 4`,
		`fw_stage_seconds_bucket{worker="w1:1",stage="guard",le="+Inf"} 2`,
		`fw_stage_seconds_sum{worker="w1:1",stage="guard"} 0.5`,
		`fw_stage_seconds_count{worker="w1:1",stage="guard"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("merged exposition missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE freeway_http_requests_total counter"); n != 1 {
		t.Errorf("TYPE declared %d times, want 1:\n%s", n, out)
	}
	// Valid exposition-order invariant: every sample follows its family's
	// TYPE line before any other family's TYPE line intervenes.
	if validateExpositionText(t, out); t.Failed() {
		t.Logf("full merged output:\n%s", out)
	}
}

func TestMergeExpositionsRenamesWorkerLabel(t *testing.T) {
	part := "# TYPE freeway_router_worker_healthy gauge\n" +
		"freeway_router_worker_healthy{worker=\"10.0.0.1:9\"} 1\n"
	var sb strings.Builder
	if err := MergeExpositions(&sb, []ExpositionPart{{Worker: "agg", Text: part}}); err != nil {
		t.Fatal(err)
	}
	want := `freeway_router_worker_healthy{worker="agg",exported_worker="10.0.0.1:9"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("got:\n%s\nwant line %q", sb.String(), want)
	}
}

func TestMergeExpositionsUntypedSamples(t *testing.T) {
	part := "orphan_metric 1\n"
	var sb strings.Builder
	if err := MergeExpositions(&sb, []ExpositionPart{{Worker: "w", Text: part}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `orphan_metric{worker="w"} 1`) {
		t.Fatalf("orphan sample not labeled: %q", sb.String())
	}
}

func TestRenameLabelBoundaries(t *testing.T) {
	cases := []struct{ in, want string }{
		{`worker="a"`, `exported_worker="a"`},
		{`coworker="a"`, `coworker="a"`},
		{`exported_worker="a"`, `exported_worker="a"`},
		{`stream="s",worker="a"`, `stream="s",exported_worker="a"`},
		{`worker="a\"b",le="1"`, `exported_worker="a\"b",le="1"`},
		{``, ``},
	}
	for _, c := range cases {
		if got := renameLabel(c.in, "worker", "exported_worker"); got != c.want {
			t.Errorf("renameLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// validateExpositionText checks the sample-after-TYPE grouping invariant on
// merged output: once a family's samples start, no sample from an earlier
// family may reappear.
func validateExpositionText(t *testing.T, text string) {
	t.Helper()
	seenDone := map[string]bool{}
	current := ""
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := baseName(sampleName(line))
		if name != current {
			if seenDone[name] {
				t.Errorf("family %q samples split into multiple blocks", name)
			}
			if current != "" {
				seenDone[current] = true
			}
			current = name
		}
	}
}
