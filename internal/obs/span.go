package obs

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"
)

// Trace context: a dependency-free subset of the W3C Trace Context format.
// A traceparent string is "00-<32 hex trace id>-<16 hex span id>-<2 hex
// flags>". The trace id names the whole request; each hop (router attempt,
// worker process call) mints its own span id and records the incoming span
// id as its parent, so spans from every node chain into one tree under the
// shared trace id.

// TraceparentHeader is the HTTP header carrying trace context — the W3C
// Trace Context header (case-insensitive per HTTP; spelled in Go's
// canonical MIME form so Header.Get/Set take their no-alloc fast path).
const TraceparentHeader = "Traceparent"

// Response headers shared by the serving and routing tiers, defined here so
// both tiers (and the load generator reading them) agree on one spelling.
const (
	// TraceIDHeader echoes the request's trace id on responses.
	TraceIDHeader = "X-Freeway-Trace"
	// WorkerMicrosHeader reports the worker-side wall time of a process call.
	WorkerMicrosHeader = "X-Freeway-Worker-Micros"
	// RouterMicrosHeader reports the router-side wall time up to the first
	// response byte (attempt loop + backoff, excluding body relay).
	RouterMicrosHeader = "X-Freeway-Router-Micros"
	// AttemptsHeader reports how many forward attempts the router made.
	AttemptsHeader = "X-Freeway-Attempts"
)

// idSource is a locked PRNG for span/trace id minting. Seeded from the OS
// entropy pool once at startup; after that, id generation never touches the
// kernel — cheap enough for the per-request hot path.
var idSource = struct {
	mu sync.Mutex
	r  *rand.Rand
}{r: rand.New(rand.NewSource(cryptoSeed()))}

func cryptoSeed() int64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return time.Now().UnixNano()
	}
	return int64(binary.LittleEndian.Uint64(b[:]))
}

func randHex(n int) string {
	var buf [16]byte
	idSource.mu.Lock()
	idSource.r.Read(buf[:n])
	idSource.mu.Unlock()
	// An all-zero id is invalid per the W3C spec; nudge it.
	zero := true
	for _, c := range buf[:n] {
		if c != 0 {
			zero = false
			break
		}
	}
	if zero {
		buf[0] = 1
	}
	var dst [32]byte
	hex.Encode(dst[:], buf[:n])
	return string(dst[:2*n])
}

// NewTraceID mints a 32-hex-char (128-bit) trace id.
func NewTraceID() string { return randHex(16) }

// NewSpanID mints a 16-hex-char (64-bit) span id.
func NewSpanID() string { return randHex(8) }

// TraceContext is a parsed traceparent: the request-wide trace id and the
// span id of the sending hop (the parent of any span the receiver records).
type TraceContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether both ids are present and well-formed.
func (tc TraceContext) Valid() bool {
	return isHex(tc.TraceID, 32) && isHex(tc.SpanID, 16)
}

// Traceparent renders the context in W3C form with the sampled flag set.
func (tc TraceContext) Traceparent() string {
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-01"
}

// NewTraceContext mints a fresh root context.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
}

// ParseTraceparent parses a traceparent string. It accepts any 2-hex
// version byte (future-proof, per the W3C spec's version-independent
// parsing rule) and ignores trailing fields beyond the flags.
func ParseTraceparent(s string) (TraceContext, bool) {
	// "vv-<32>-<16>-ff" = 2+1+32+1+16+1+2 = 55 bytes minimum.
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceContext{}, false
	}
	if !isHex(s[:2], 2) {
		return TraceContext{}, false
	}
	tc := TraceContext{TraceID: s[3:35], SpanID: s[36:52]}
	if !tc.Valid() || allZero(tc.TraceID) || allZero(tc.SpanID) {
		return TraceContext{}, false
	}
	return tc, true
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < n; i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// Span is one hop's record of its part in a traced request. Router hops
// fill the retry fields (Attempt/Owner/Breaker/BackoffMicros); worker hops
// fill Stream/Rows/Fused. All fields are flat so a span JSON-encodes to one
// line for /v1/spans and /v1/cluster/trace.
type Span struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	// Parent is the span id of the upstream hop ("" for a root span).
	Parent string `json:"parent,omitempty"`
	// Name is the operation ("router.forward", "worker.process").
	Name string `json:"name"`
	// Service identifies the node that recorded the span (router listen
	// address or worker id).
	Service string `json:"service,omitempty"`
	// Stream is the stream id the request targeted.
	Stream string `json:"stream,omitempty"`
	// Proto is the request encoding: "json" or "binary".
	Proto string `json:"proto,omitempty"`
	// StartUnixNano orders spans within a trace.
	StartUnixNano int64 `json:"start_unix_nano"`
	// DurationMicros is the hop's wall time.
	DurationMicros float64 `json:"duration_micros"`
	// Attempt is the router's 0-based retry attempt for this hop.
	Attempt int `json:"attempt,omitempty"`
	// Owner is the worker address the router sent this attempt to.
	Owner string `json:"owner,omitempty"`
	// Breaker is the owner's circuit-breaker state observed at the end of
	// the attempt: "closed" (healthy) or "open" (ejected).
	Breaker string `json:"breaker,omitempty"`
	// BackoffMicros is the retry backoff slept before this attempt.
	BackoffMicros float64 `json:"backoff_micros,omitempty"`
	// Rows is the batch row count a worker span processed.
	Rows int `json:"rows,omitempty"`
	// Fused is the fused-group size when the coalescer merged this request
	// with others (0 when the batch ran alone).
	Fused int `json:"fused,omitempty"`
	// Status is "ok" or "error"; Err carries the failure detail.
	Status string `json:"status"`
	Err    string `json:"err,omitempty"`
}

// SpanRing is a bounded ring of span records, mirroring TraceRing. Safe for
// concurrent writers and readers; the oldest span is overwritten once full.
type SpanRing struct {
	mu      sync.Mutex
	buf     []Span
	next    int
	n       int
	dropped int64
}

// NewSpanRing returns a ring holding at most capacity spans
// (capacity < 1 is raised to 1).
func NewSpanRing(capacity int) *SpanRing {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanRing{buf: make([]Span, capacity)}
}

// Add appends a span, evicting the oldest when full.
func (r *SpanRing) Add(s Span) {
	r.mu.Lock()
	if r.n == len(r.buf) {
		r.dropped++
	} else {
		r.n++
	}
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	r.mu.Unlock()
}

// Len returns the number of retained spans.
func (r *SpanRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped returns how many spans have been evicted.
func (r *SpanRing) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Last returns up to n retained spans in insertion order (oldest first).
// n <= 0 returns every retained span.
func (r *SpanRing) Last(n int) []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > r.n {
		n = r.n
	}
	out := make([]Span, n)
	start := r.next - n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < n; i++ {
		out[i] = r.buf[(start+i)%len(r.buf)]
	}
	return out
}

// ByTrace returns every retained span with the given trace id, insertion
// order. The ring is bounded (typically a few thousand entries), so the
// linear scan is cheap relative to the HTTP round trip that triggers it.
func (r *SpanRing) ByTrace(traceID string) []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Span
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		s := r.buf[(start+i)%len(r.buf)]
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	return out
}

// WriteSpansJSON encodes spans as a JSON array.
func WriteSpansJSON(w io.Writer, spans []Span) error {
	if spans == nil {
		spans = []Span{}
	}
	return json.NewEncoder(w).Encode(spans)
}

// FormatDurationMicros converts a duration to fractional microseconds for
// span records.
func FormatDurationMicros(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e3
}

// SpanError renders an error for the Span.Err field ("" for nil).
func SpanError(err error) string {
	if err == nil {
		return ""
	}
	return fmt.Sprint(err)
}
