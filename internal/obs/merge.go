package obs

import (
	"io"
	"strings"
)

// Metrics federation: merging several Prometheus text expositions (the
// router's own registry plus one scrape per healthy worker) into a single
// exposition in which every worker-originated series carries a
// worker="<id>" label.
//
// Merge rules:
//   - Each input is split into metric families by its # TYPE comments;
//     sample lines are attributed to the most recent TYPE family above
//     them (the layout WritePrometheus and every Prometheus client
//     library produce). Samples with no preceding TYPE go to an implicit
//     untyped family named after the sample.
//   - Families are emitted in first-seen order across inputs. HELP/TYPE
//     comments come from the first input that declared the family;
//     duplicate declarations from later inputs are dropped.
//   - Every sample line from an input with a non-empty label value gets
//     `worker="<id>"` spliced into its label set. Histogram _bucket/_sum/
//     _count suffix lines are plain samples here, so they are labeled the
//     same way and the triple stays consistent.
//   - If a sample already carries a `worker` label (the router's own
//     per-worker series, scraped transitively), the existing label is
//     renamed to exported_worker, matching Prometheus federation
//     convention, so the injected label never collides.
//   - Inputs that declare the same family with a different TYPE keep
//     their samples (they are still labeled and emitted) but their
//     conflicting declaration is dropped; first declaration wins.

// ExpositionPart is one input to MergeExpositions.
type ExpositionPart struct {
	// Worker is the label value injected into every sample of this part.
	// Empty means "emit unlabeled" (the federating node's own series).
	Worker string
	// Text is the part's Prometheus text exposition.
	Text string
}

type mergedFamily struct {
	comments []string // HELP/TYPE lines from the first declaring part
	samples  []string // label-injected sample lines, input order
}

// MergeExpositions merges the parts into one exposition written to w.
func MergeExpositions(w io.Writer, parts []ExpositionPart) error {
	families := map[string]*mergedFamily{}
	var order []string
	get := func(name string) *mergedFamily {
		f := families[name]
		if f == nil {
			f = &mergedFamily{}
			families[name] = f
			order = append(order, name)
		}
		return f
	}
	for _, part := range parts {
		current := "" // family the next samples belong to
		for _, line := range strings.Split(part.Text, "\n") {
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "#") {
				name, isDecl := commentFamily(line)
				if !isDecl {
					continue // free-form comment: drop
				}
				current = name
				f := get(name)
				if !containsLine(f.comments, line) && len(f.comments) < 2 {
					// Keep at most one HELP and one TYPE (first part wins).
					if strings.HasPrefix(line, "# TYPE ") && hasType(f.comments) {
						continue
					}
					if strings.HasPrefix(line, "# HELP ") && hasHelp(f.comments) {
						continue
					}
					f.comments = append(f.comments, line)
				}
				continue
			}
			name := sampleName(line)
			if name == "" {
				continue // malformed sample: drop
			}
			fam := current
			if fam == "" || !belongsTo(name, fam) {
				fam = baseName(name)
			}
			f := get(fam)
			f.samples = append(f.samples, injectWorkerLabel(line, part.Worker))
		}
	}
	var sb strings.Builder
	for _, name := range order {
		f := families[name]
		for _, c := range f.comments {
			sb.WriteString(c)
			sb.WriteByte('\n')
		}
		for _, s := range f.samples {
			sb.WriteString(s)
			sb.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// commentFamily extracts the family name from a "# HELP name ..." or
// "# TYPE name ..." comment; isDecl is false for any other comment.
func commentFamily(line string) (name string, isDecl bool) {
	rest, ok := strings.CutPrefix(line, "# HELP ")
	if !ok {
		rest, ok = strings.CutPrefix(line, "# TYPE ")
	}
	if !ok {
		return "", false
	}
	if i := strings.IndexByte(rest, ' '); i > 0 {
		return rest[:i], true
	}
	return rest, rest != ""
}

func hasType(comments []string) bool {
	for _, c := range comments {
		if strings.HasPrefix(c, "# TYPE ") {
			return true
		}
	}
	return false
}

func hasHelp(comments []string) bool {
	for _, c := range comments {
		if strings.HasPrefix(c, "# HELP ") {
			return true
		}
	}
	return false
}

func containsLine(lines []string, s string) bool {
	for _, l := range lines {
		if l == s {
			return true
		}
	}
	return false
}

// sampleName returns the metric name of a sample line (up to the first
// '{' or space), or "" when malformed.
func sampleName(line string) string {
	end := len(line)
	if i := strings.IndexAny(line, "{ "); i >= 0 {
		end = i
	}
	if end == 0 {
		return ""
	}
	return line[:end]
}

// baseName strips the histogram/summary suffixes so _bucket/_sum/_count
// samples group under their family.
func baseName(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if s, ok := strings.CutSuffix(name, suf); ok && s != "" {
			return s
		}
	}
	return name
}

// belongsTo reports whether a sample name is part of the family: equal, or
// family plus a histogram suffix.
func belongsTo(name, fam string) bool {
	if name == fam {
		return true
	}
	rest, ok := strings.CutPrefix(name, fam)
	if !ok {
		return false
	}
	switch rest {
	case "_bucket", "_sum", "_count":
		return true
	}
	return false
}

// injectWorkerLabel splices worker="<id>" into a sample line's label set,
// renaming any pre-existing worker label to exported_worker. worker == ""
// returns the line unchanged.
func injectWorkerLabel(line, worker string) string {
	if worker == "" {
		return line
	}
	lbl := `worker="` + escapeLabelValue(worker) + `"`
	open := strings.IndexByte(line, '{')
	if open < 0 {
		// `name value` → `name{worker="id"} value`
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return line // malformed; leave as-is
		}
		return line[:sp] + "{" + lbl + "}" + line[sp:]
	}
	end := strings.IndexByte(line[open:], '}')
	if end < 0 {
		return line
	}
	end += open
	labels := renameLabel(line[open+1:end], "worker", "exported_worker")
	if labels == "" {
		return line[:open+1] + lbl + line[end:]
	}
	return line[:open+1] + lbl + "," + labels + line[end:]
}

// renameLabel renames whole-key occurrences of from= to to= in a rendered
// label list. Matching is on key boundaries (start of list or after a
// comma), so keys that merely end in `from` (exported_worker, coworker)
// are untouched.
func renameLabel(labels, from, to string) string {
	var sb strings.Builder
	i := 0
	for i < len(labels) {
		eq := strings.IndexByte(labels[i:], '=')
		if eq < 0 {
			sb.WriteString(labels[i:])
			break
		}
		if key := labels[i : i+eq]; key == from {
			sb.WriteString(to)
		} else {
			sb.WriteString(key)
		}
		j := i + eq + 1
		if j >= len(labels) || labels[j] != '"' {
			// Malformed pair: copy the remainder verbatim.
			sb.WriteString(labels[i+eq:])
			break
		}
		sb.WriteString(`="`)
		j++
		for j < len(labels) {
			if labels[j] == '\\' && j+1 < len(labels) {
				sb.WriteString(labels[j : j+2])
				j += 2
				continue
			}
			c := labels[j]
			sb.WriteByte(c)
			j++
			if c == '"' {
				break
			}
		}
		if j < len(labels) && labels[j] == ',' {
			sb.WriteByte(',')
			j++
		}
		i = j
	}
	return sb.String()
}
