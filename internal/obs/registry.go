package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry holds named metric families and their labeled series, and
// renders them in the Prometheus text exposition format (version 0.0.4).
// Registration methods are idempotent: asking for an existing series
// returns the same instance, so call sites need no init ordering. A name
// registered as one type cannot be re-registered as another (panic —
// that's a programming error, not runtime input).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string // family registration order
}

type family struct {
	name, help, typ string
	series          map[string]any // rendered label string -> metric
	order           []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Default is the process-wide registry; commands that run a single
// pipeline register into it.
var Default = NewRegistry()

// Counter returns the counter for name+labels, registering it on first
// use. Labels are alternating key, value strings.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	m := r.metric(name, help, "counter", labels, func() any { return &Counter{} })
	return m.(*Counter)
}

// Gauge returns the gauge for name+labels, registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	m := r.metric(name, help, "gauge", labels, func() any { return &Gauge{} })
	return m.(*Gauge)
}

// Histogram returns the histogram for name+labels, registering it on
// first use with the given bucket bounds (nil = DefLatencyBuckets). An
// existing series keeps its original buckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	m := r.metric(name, help, "histogram", labels, func() any { return NewHistogram(bounds) })
	return m.(*Histogram)
}

func (r *Registry) metric(name, help, typ string, labels []string, mk func() any) any {
	if name == "" {
		panic("obs: empty metric name")
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: map[string]any{}}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	m, ok := f.series[key]
	if !ok {
		m = mk()
		f.series[key] = m
		f.order = append(f.order, key)
	}
	return m
}

// NumSeries returns the number of registered series (histograms count
// once, not per exposition line).
func (r *Registry) NumSeries() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, f := range r.families {
		n += len(f.series)
	}
	return n
}

// renderLabels canonicalizes alternating key, value pairs into the
// exposition form `{k1="v1",k2="v2"}` with keys sorted and values escaped.
// No labels renders as "".
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be alternating key, value pairs")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(a, b int) bool { return kvs[a].k < kvs[b].k })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(p.v))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabelValue applies the exposition-format escapes for label values:
// backslash, double-quote, and newline.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// escapeHelp applies the exposition-format escapes for HELP text:
// backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// WritePrometheus renders every registered family in the text exposition
// format: a HELP line (when help text was provided), a TYPE line, then one
// line per series — or the _bucket/_sum/_count triple for histograms.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var sb strings.Builder
	for _, name := range r.order {
		f := r.families[name]
		if f.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.typ)
		for _, key := range f.order {
			switch m := f.series[key].(type) {
			case *Counter:
				fmt.Fprintf(&sb, "%s%s %d\n", f.name, key, m.Value())
			case *Gauge:
				fmt.Fprintf(&sb, "%s%s %s\n", f.name, key, formatFloat(m.Value()))
			case *Histogram:
				writeHistogram(&sb, f.name, key, m)
			}
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// writeHistogram renders one histogram series: cumulative _bucket lines
// per bound plus +Inf, then _sum and _count.
func writeHistogram(sb *strings.Builder, name, key string, h *Histogram) {
	counts, total := h.snapshot()
	var cum int64
	for i, bound := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(sb, "%s_bucket%s %d\n", name, mergeLE(key, formatFloat(bound)), cum)
	}
	fmt.Fprintf(sb, "%s_bucket%s %d\n", name, mergeLE(key, "+Inf"), total)
	fmt.Fprintf(sb, "%s_sum%s %s\n", name, key, formatFloat(h.Sum()))
	fmt.Fprintf(sb, "%s_count%s %d\n", name, key, total)
}

// mergeLE splices an le="bound" label into a rendered label set.
func mergeLE(key, bound string) string {
	le := `le="` + bound + `"`
	if key == "" {
		return "{" + le + "}"
	}
	return key[:len(key)-1] + "," + le + "}"
}

// formatFloat renders a float the way the exposition format expects
// (shortest representation; integers stay integral-looking is fine).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
