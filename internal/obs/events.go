package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Cluster timeline event types recorded by the router. Kept as plain
// strings (not an enum) so workers or future components can add their own
// types without touching this package.
const (
	EventBreakerOpen  = "breaker_open"  // worker ejected after consecutive failures
	EventBreakerClose = "breaker_close" // worker rejoined after a successful probe
	EventMigration    = "migration"     // a stream's sessions moved between workers
	EventRestore      = "checkpoint_restore"
	EventAntiEntropy  = "anti_entropy" // knowledge merge on rejoin
	EventStaleFlush   = "stale_flush"  // rejoining worker dropped stale sessions
)

// ClusterEvent is one structured timeline entry: what happened, where, and
// (when the event was caused by a traced request) which trace to follow.
type ClusterEvent struct {
	// UnixNano timestamps the event.
	UnixNano int64 `json:"unix_nano"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Worker is the worker address the event concerns.
	Worker string `json:"worker,omitempty"`
	// Stream is the affected stream id (migrations).
	Stream string `json:"stream,omitempty"`
	// TraceID links the event to the request that caused it, when any.
	TraceID string `json:"trace_id,omitempty"`
	// Detail is a human-readable elaboration.
	Detail string `json:"detail,omitempty"`
}

// EventRing is a bounded ring of cluster timeline events, mirroring
// TraceRing. Safe for concurrent writers and readers.
type EventRing struct {
	mu      sync.Mutex
	buf     []ClusterEvent
	next    int
	n       int
	dropped int64
}

// NewEventRing returns a ring holding at most capacity events
// (capacity < 1 is raised to 1).
func NewEventRing(capacity int) *EventRing {
	if capacity < 1 {
		capacity = 1
	}
	return &EventRing{buf: make([]ClusterEvent, capacity)}
}

// Add appends an event, evicting the oldest when full.
func (r *EventRing) Add(ev ClusterEvent) {
	r.mu.Lock()
	if r.n == len(r.buf) {
		r.dropped++
	} else {
		r.n++
	}
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	r.mu.Unlock()
}

// Len returns the number of retained events.
func (r *EventRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped returns how many events have been evicted.
func (r *EventRing) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Last returns up to n retained events in chronological order (oldest
// first). n <= 0 returns every retained event.
func (r *EventRing) Last(n int) []ClusterEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > r.n {
		n = r.n
	}
	out := make([]ClusterEvent, n)
	start := r.next - n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < n; i++ {
		out[i] = r.buf[(start+i)%len(r.buf)]
	}
	return out
}

// WriteJSONL encodes up to n events (oldest first) as one JSON object per
// line — the /v1/cluster/events format.
func (r *EventRing) WriteJSONL(w io.Writer, n int) error {
	enc := json.NewEncoder(w)
	var firstErr error
	for _, ev := range r.Last(n) {
		if err := enc.Encode(ev); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
