package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() {
		t.Fatalf("minted context invalid: %+v", tc)
	}
	tp := tc.Traceparent()
	if len(tp) != 55 {
		t.Fatalf("traceparent %q: len %d, want 55", tp, len(tp))
	}
	got, ok := ParseTraceparent(tp)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected", tp)
	}
	if got != tc {
		t.Fatalf("round trip: got %+v, want %+v", got, tc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"00-" + strings.Repeat("0", 32) + "-" + strings.Repeat("a", 16) + "-01", // all-zero trace id
		"00-" + strings.Repeat("a", 32) + "-" + strings.Repeat("0", 16) + "-01", // all-zero span id
		"00-" + strings.Repeat("A", 32) + "-" + strings.Repeat("a", 16) + "-01", // uppercase hex
		"zz-" + strings.Repeat("a", 32) + "-" + strings.Repeat("a", 16) + "-01", // bad version
		"00x" + strings.Repeat("a", 32) + "-" + strings.Repeat("a", 16) + "-01", // bad separator
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", s)
		}
	}
	// Future versions and trailing members must parse (W3C forward compat).
	good := "01-" + strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16) + "-01-extra"
	if _, ok := ParseTraceparent(good); !ok {
		t.Errorf("ParseTraceparent(%q) rejected, want accept", good)
	}
}

func TestNewIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 32 || seen[id] {
			t.Fatalf("trace id %q duplicate or malformed at i=%d", id, i)
		}
		seen[id] = true
	}
}

func TestSpanRingByTraceAndEviction(t *testing.T) {
	r := NewSpanRing(4)
	for i := 0; i < 6; i++ {
		id := "t1"
		if i%2 == 1 {
			id = "t2"
		}
		r.Add(Span{TraceID: id, Attempt: i})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", r.Dropped())
	}
	got := r.ByTrace("t1")
	if len(got) != 2 || got[0].Attempt != 2 || got[1].Attempt != 4 {
		t.Fatalf("ByTrace(t1) = %+v", got)
	}
	if n := len(r.Last(0)); n != 4 {
		t.Fatalf("Last(0) returned %d spans, want 4", n)
	}
}

func TestSpanRingConcurrent(t *testing.T) {
	r := NewSpanRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Add(Span{TraceID: NewTraceID()})
				r.ByTrace("none")
			}
		}()
	}
	wg.Wait()
	if r.Len() != 64 {
		t.Fatalf("Len = %d, want 64", r.Len())
	}
}

func TestExemplarRingTopK(t *testing.T) {
	r := NewExemplarRing(3)
	for _, d := range []float64{5, 1, 9, 3, 7, 2} {
		r.Offer(Exemplar{TraceID: "t", DurationMicros: d})
	}
	top := r.TopK()
	if len(top) != 3 {
		t.Fatalf("TopK len = %d, want 3", len(top))
	}
	want := []float64{9, 7, 5}
	for i, e := range top {
		if e.DurationMicros != want[i] {
			t.Fatalf("TopK[%d] = %v, want %v", i, e.DurationMicros, want[i])
		}
	}
}

func TestEventRingJSONL(t *testing.T) {
	r := NewEventRing(2)
	r.Add(ClusterEvent{Type: EventBreakerOpen, Worker: "w1"})
	r.Add(ClusterEvent{Type: EventMigration, Worker: "w2", Stream: "s"})
	r.Add(ClusterEvent{Type: EventBreakerClose, Worker: "w1"})
	if r.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", r.Dropped())
	}
	var sb strings.Builder
	if err := r.WriteJSONL(&sb, 0); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL lines = %d, want 2: %q", len(lines), sb.String())
	}
	if !strings.Contains(lines[0], EventMigration) || !strings.Contains(lines[1], EventBreakerClose) {
		t.Fatalf("unexpected JSONL order: %q", sb.String())
	}
}
