package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// StageTiming is one pipeline stage's wall time within a batch.
type StageTiming struct {
	Stage  string  `json:"stage"`
	Micros float64 `json:"micros"`
}

// TraceEvent is one structured decision record per processed batch: which
// shift pattern was detected, which adaptive mechanism was dispatched, the
// evidence behind the decision, and how long each stage took. Fields that
// can be ±Inf in the pipeline (NearestHistory when no history exists) are
// recorded as -1 so every event stays JSON-encodable.
type TraceEvent struct {
	// Batch is the stream position (0-based).
	Batch int `json:"batch"`
	// Pattern is the detector's verdict; SubPattern refines slight shifts
	// into A1/A2 (empty when not slight).
	Pattern    string `json:"pattern"`
	SubPattern string `json:"sub_pattern,omitempty"`
	// Strategy names the dispatched mechanism.
	Strategy string `json:"strategy"`
	// Shift evidence: d_t, its weighted z-score M, the recent mean μ_d,
	// and the nearest-history distance d_h (-1 when no eligible history).
	ShiftDistance  float64 `json:"shift_distance"`
	Severity       float64 `json:"severity"`
	HistoryMean    float64 `json:"history_mean"`
	NearestHistory float64 `json:"nearest_history"`
	// Window state: normalized disorder, the rate-adjuster's decay boost,
	// stored batches/items after the push, and whether the push closed the
	// window (triggering a long-model update + knowledge preservation).
	Disorder      float64 `json:"disorder"`
	DecayBoost    float64 `json:"decay_boost,omitempty"`
	WindowBatches int     `json:"window_batches"`
	WindowItems   int     `json:"window_items"`
	WindowClosed  bool    `json:"window_closed,omitempty"`
	// EnsembleWeights are the normalized kernel weights of the fusion,
	// short model first, long model last (knowledge-restored model first
	// under knowledge reuse). Empty when no fusion ran.
	EnsembleWeights []float64 `json:"ensemble_weights,omitempty"`
	// CEC evidence (sudden-shift dispatches): effective cluster count,
	// Lloyd iterations, coherent-experience points used, and the
	// labeled-experience agreement behind the arbitration.
	CECClusters   int     `json:"cec_clusters,omitempty"`
	CECIterations int     `json:"cec_iterations,omitempty"`
	CECExperience int     `json:"cec_experience,omitempty"`
	CECAgreement  float64 `json:"cec_agreement,omitempty"`
	// Knowledge-store evidence: whether a lookup ran, whether it matched,
	// and the matched distribution's distance (-1 when no match).
	KnowledgeChecked  bool    `json:"knowledge_checked,omitempty"`
	KnowledgeHit      bool    `json:"knowledge_hit,omitempty"`
	KnowledgeDistance float64 `json:"knowledge_distance,omitempty"`
	// Guardrail and watchdog verdicts for the batch.
	GuardSanitized int  `json:"guard_sanitized,omitempty"`
	GuardRejected  bool `json:"guard_rejected,omitempty"`
	Divergences    int  `json:"divergences,omitempty"`
	// Accuracy is the batch's real-time accuracy (-1 when unlabeled).
	Accuracy float64 `json:"accuracy"`
	// Kernel-tier evidence (only set when the inference plane runs a speed
	// tier): the tier name, the number of int8-quantized weight matrices in
	// the published snapshot, and the spread of their nonzero row scales.
	KernelTier    string  `json:"kernel_tier,omitempty"`
	QuantMats     int     `json:"quant_mats,omitempty"`
	QuantScaleMin float64 `json:"quant_scale_min,omitempty"`
	QuantScaleMax float64 `json:"quant_scale_max,omitempty"`
	// TraceID joins this event to the request-scoped trace that carried
	// the batch (empty for untraced ingestion paths).
	TraceID string `json:"trace_id,omitempty"`
	// FusedTraces lists the trace ids of every request the coalescer fused
	// into this compute pass (nil when the batch ran alone).
	FusedTraces []string `json:"fused_traces,omitempty"`
	// Stages are the per-stage wall times, pipeline order.
	Stages []StageTiming `json:"stages"`
}

// TraceRing is a bounded ring buffer of decision events. Memory is bounded
// by the capacity fixed at construction: the ring never grows, and the
// oldest event is overwritten (and counted as dropped) once full. Safe for
// concurrent writers and readers.
type TraceRing struct {
	mu      sync.Mutex
	buf     []TraceEvent
	next    int // index the next Add writes to
	n       int // events currently held
	dropped int64
}

// NewTraceRing returns a ring holding at most capacity events
// (capacity < 1 is raised to 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]TraceEvent, capacity)}
}

// Add appends an event, evicting the oldest when full.
func (t *TraceRing) Add(ev TraceEvent) {
	t.mu.Lock()
	if t.n == len(t.buf) {
		t.dropped++
	} else {
		t.n++
	}
	t.buf[t.next] = ev
	t.next = (t.next + 1) % len(t.buf)
	t.mu.Unlock()
}

// Len returns the number of retained events.
func (t *TraceRing) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Cap returns the ring's fixed capacity.
func (t *TraceRing) Cap() int { return len(t.buf) }

// Dropped returns how many events have been evicted.
func (t *TraceRing) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Last returns up to n retained events in chronological order (oldest
// first, newest last). n <= 0 returns every retained event.
func (t *TraceRing) Last(n int) []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.n {
		n = t.n
	}
	out := make([]TraceEvent, n)
	start := t.next - n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < n; i++ {
		out[i] = t.buf[(start+i)%len(t.buf)]
	}
	return out
}

// Newest returns the most recently added event, ok=false when empty.
func (t *TraceRing) Newest() (TraceEvent, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n == 0 {
		return TraceEvent{}, false
	}
	i := t.next - 1
	if i < 0 {
		i += len(t.buf)
	}
	return t.buf[i], true
}

// WriteJSONL encodes up to n events (oldest first) as one JSON object per
// line — the /v1/trace and `freeway -trace` format.
func (t *TraceRing) WriteJSONL(w io.Writer, n int) error {
	enc := json.NewEncoder(w)
	var firstErr error
	for _, ev := range t.Last(n) {
		if err := enc.Encode(ev); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// EncodeJSONL writes one event as a single JSONL line.
func EncodeJSONL(w io.Writer, ev TraceEvent) error {
	return json.NewEncoder(w).Encode(ev)
}
