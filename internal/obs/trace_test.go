package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTraceRingEvictionOrder(t *testing.T) {
	r := NewTraceRing(4)
	if r.Cap() != 4 || r.Len() != 0 {
		t.Fatalf("fresh ring: cap=%d len=%d", r.Cap(), r.Len())
	}
	if _, ok := r.Newest(); ok {
		t.Error("empty ring should have no newest")
	}
	for i := 0; i < 10; i++ {
		r.Add(TraceEvent{Batch: i})
	}
	if r.Len() != 4 {
		t.Errorf("len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", r.Dropped())
	}
	got := r.Last(0)
	for i, ev := range got {
		if want := 6 + i; ev.Batch != want {
			t.Errorf("Last[%d].Batch = %d, want %d (oldest-first order)", i, ev.Batch, want)
		}
	}
	if last2 := r.Last(2); len(last2) != 2 || last2[0].Batch != 8 || last2[1].Batch != 9 {
		t.Errorf("Last(2) = %+v", last2)
	}
	if newest, ok := r.Newest(); !ok || newest.Batch != 9 {
		t.Errorf("Newest = %+v ok=%v", newest, ok)
	}
	// Asking for more than retained returns only what exists.
	if over := r.Last(100); len(over) != 4 {
		t.Errorf("Last(100) = %d events", len(over))
	}
}

// TestTraceRingBoundedUnderConcurrentWriters proves the ring never grows
// past capacity and accounts for every event, with writers racing (run
// under -race via make check).
func TestTraceRingBoundedUnderConcurrentWriters(t *testing.T) {
	const capacity, workers, per = 64, 8, 500
	r := NewTraceRing(capacity)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Add(TraceEvent{Batch: w*per + i, Strategy: "multi-granularity"})
				if l := r.Len(); l > capacity {
					t.Errorf("ring grew past capacity: %d", l)
					return
				}
			}
		}(w)
	}
	// Concurrent readers while writing.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, ev := range r.Last(16) {
				_ = ev.Batch
			}
			r.Newest()
		}
	}()
	wg.Wait()
	<-done
	if r.Len() != capacity {
		t.Errorf("len = %d, want %d", r.Len(), capacity)
	}
	if got := r.Dropped() + int64(r.Len()); got != workers*per {
		t.Errorf("dropped+len = %d, want %d (every Add accounted)", got, workers*per)
	}
	// Retained events are unique (no slot double-counted).
	seen := map[int]bool{}
	for _, ev := range r.Last(0) {
		if seen[ev.Batch] {
			t.Errorf("duplicate event %d", ev.Batch)
		}
		seen[ev.Batch] = true
	}
}

func TestTraceJSONLRoundTrip(t *testing.T) {
	r := NewTraceRing(8)
	r.Add(TraceEvent{
		Batch: 3, Pattern: "B(sudden)", Strategy: "coherent-experience-clustering",
		ShiftDistance: 4.2, Severity: 9.9, NearestHistory: -1,
		EnsembleWeights: []float64{0.7, 0.3},
		Stages: []StageTiming{
			{Stage: "shift_detect", Micros: 120},
			{Stage: "cluster", Micros: 800},
		},
		Accuracy: 0.5,
	})
	r.Add(TraceEvent{Batch: 4, Pattern: "A1(directional)", Strategy: "multi-granularity", Accuracy: -1})

	var sb strings.Builder
	if err := r.WriteJSONL(&sb, 0); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var events []TraceEvent
	for sc.Scan() {
		var ev TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) != 2 {
		t.Fatalf("decoded %d events", len(events))
	}
	if events[0].Batch != 3 || events[0].Strategy != "coherent-experience-clustering" {
		t.Errorf("event 0 = %+v", events[0])
	}
	if len(events[0].Stages) != 2 || events[0].Stages[1].Stage != "cluster" {
		t.Errorf("stages = %+v", events[0].Stages)
	}
	if events[1].Pattern != "A1(directional)" || events[1].Accuracy != -1 {
		t.Errorf("event 1 = %+v", events[1])
	}
}
