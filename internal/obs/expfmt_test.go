package obs

import (
	"bufio"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Prometheus text exposition format (version 0.0.4) line grammar, used by
// both this test and the serve-layer scrape test.
var (
	helpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
	labelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
)

// ValidateExposition checks a full exposition body line by line: HELP/TYPE
// comment syntax, sample-line syntax, parseable values, labels well-formed,
// and that every sample's family was TYPE-declared before it. It returns
// the set of sample names seen.
func validateExposition(t *testing.T, body string) map[string]bool {
	t.Helper()
	declared := map[string]string{} // family -> type
	seen := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(body))
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if m := typeRe.FindStringSubmatch(text); m != nil {
				if _, dup := declared[m[1]]; dup {
					t.Errorf("line %d: duplicate TYPE for %s", line, m[1])
				}
				declared[m[1]] = m[2]
				continue
			}
			if helpRe.MatchString(text) {
				continue
			}
			t.Errorf("line %d: malformed comment: %q", line, text)
			continue
		}
		m := sampleRe.FindStringSubmatch(text)
		if m == nil {
			t.Errorf("line %d: malformed sample: %q", line, text)
			continue
		}
		name, labels, value := m[1], m[2], m[3]
		if value != "+Inf" && value != "-Inf" && value != "NaN" {
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				t.Errorf("line %d: bad value %q: %v", line, value, err)
			}
		}
		if labels != "" {
			for _, lv := range splitLabels(labels[1 : len(labels)-1]) {
				if !labelRe.MatchString(lv) {
					t.Errorf("line %d: bad label %q", line, lv)
				}
			}
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && declared[base] == "histogram" {
				family = base
				break
			}
		}
		if _, ok := declared[family]; !ok {
			t.Errorf("line %d: sample %s has no preceding TYPE", line, name)
		}
		seen[name] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return seen
}

// splitLabels splits `k="v",k2="v2"` on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for _, r := range s {
		switch {
		case escaped:
			escaped = false
		case r == '\\':
			escaped = true
		case r == '"':
			inQuote = !inQuote
		case r == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
			continue
		}
		cur.WriteRune(r)
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

func TestWritePrometheusSyntax(t *testing.T) {
	r := NewRegistry()
	r.Counter("fw_batches_total", "batches processed").Add(7)
	r.Counter("fw_pattern_total", "per-pattern batches", "pattern", "B(sudden)").Add(2)
	r.Counter("fw_pattern_total", "per-pattern batches", "pattern", "C(reoccurring)").Inc()
	r.Gauge("fw_disorder", "window disorder").Set(0.25)
	r.Gauge("fw_weird", "escapes", "q", `a"b\c`+"\nd").Set(-1.5)
	h := r.Histogram("fw_stage_seconds", "stage latency", []float64{0.001, 0.01}, "stage", "shift_detect")
	h.Observe(0.0005)
	h.Observe(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	seen := validateExposition(t, body)

	for _, want := range []string{
		"fw_batches_total", "fw_pattern_total", "fw_disorder", "fw_weird",
		"fw_stage_seconds_bucket", "fw_stage_seconds_sum", "fw_stage_seconds_count",
	} {
		if !seen[want] {
			t.Errorf("missing sample %s in:\n%s", want, body)
		}
	}
	for _, want := range []string{
		`fw_batches_total 7`,
		`fw_pattern_total{pattern="B(sudden)"} 2`,
		`fw_pattern_total{pattern="C(reoccurring)"} 1`,
		`fw_stage_seconds_bucket{stage="shift_detect",le="0.001"} 1`,
		`fw_stage_seconds_bucket{stage="shift_detect",le="+Inf"} 2`,
		`fw_stage_seconds_count{stage="shift_detect"} 2`,
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("missing line %q in:\n%s", want, body)
		}
	}
	// Cumulative bucket counts must be monotone.
	if !strings.Contains(body, `fw_stage_seconds_bucket{stage="shift_detect",le="0.01"} 1`) {
		t.Errorf("bucket cumulation wrong:\n%s", body)
	}
}

func TestWritePrometheusValueFormatting(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g_small", "").Set(1e-9)
	r.Gauge("g_big", "").Set(1234567890.5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("bad sample line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Errorf("value %q not parseable: %v", fields[1], err)
		}
		if math.IsNaN(v) {
			t.Errorf("unexpected NaN in %q", line)
		}
	}
}

func TestRegistryOrderStable(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 5; i++ {
		r.Counter(fmt.Sprintf("m%d_total", i), "")
	}
	var a, b strings.Builder
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("exposition order not stable across scrapes")
	}
}
