package obs

import (
	"sort"
	"sync"
)

// Exemplar is one slow-request record: enough to find the full trace
// (TraceID → /v1/cluster/trace?id=) and to see at a glance why the request
// was slow (attempts, owner, stream).
type Exemplar struct {
	TraceID        string  `json:"trace_id"`
	Stream         string  `json:"stream,omitempty"`
	Owner          string  `json:"owner,omitempty"`
	Proto          string  `json:"proto,omitempty"`
	Attempts       int     `json:"attempts"`
	StartUnixNano  int64   `json:"start_unix_nano"`
	DurationMicros float64 `json:"duration_micros"`
}

// ExemplarRing keeps the top-K slowest requests seen so far by end-to-end
// latency. Offer is O(K) on the rare admit path and O(1) (one comparison
// under the lock) for the common fast request, so it can sit on the
// per-request path of a router.
type ExemplarRing struct {
	mu  sync.Mutex
	buf []Exemplar // unordered; min tracked by minIdx
	k   int
}

// NewExemplarRing returns a ring keeping the k slowest requests
// (k < 1 is raised to 1).
func NewExemplarRing(k int) *ExemplarRing {
	if k < 1 {
		k = 1
	}
	return &ExemplarRing{k: k}
}

// Offer records the request if it ranks among the K slowest so far.
func (r *ExemplarRing) Offer(e Exemplar) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < r.k {
		r.buf = append(r.buf, e)
		return
	}
	min := 0
	for i := 1; i < len(r.buf); i++ {
		if r.buf[i].DurationMicros < r.buf[min].DurationMicros {
			min = i
		}
	}
	if e.DurationMicros > r.buf[min].DurationMicros {
		r.buf[min] = e
	}
}

// TopK returns the retained exemplars, slowest first.
func (r *ExemplarRing) TopK() []Exemplar {
	r.mu.Lock()
	out := make([]Exemplar, len(r.buf))
	copy(out, r.buf)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return out[i].DurationMicros > out[j].DurationMicros
	})
	return out
}

// Len returns the number of retained exemplars.
func (r *ExemplarRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}
