package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNonFinite reports that a value outside the finite float range reached a
// quantizer. Quantization is an inference-plane operation that sits behind
// the input guardrail: by the time rows reach a kernel they must be finite,
// so the quantizers refuse non-finite input instead of silently saturating —
// a NaN absmax would otherwise poison every scale in the row.
var ErrNonFinite = errors.New("linalg: non-finite value in quantizer input")

// QuantizedMat is an int8 matrix quantized per row with the absmax scheme:
// row i stores round(v/Scales[i]) with Scales[i] = absmax(row i)/127. The
// dequantized value of element (i, j) is float32(Data[i*Cols+j])*Scales[i].
// An all-zero row has scale 0 (its quantized values are all zero too, so
// dequantization stays exact).
//
// The inference engine stores dense weights this way with one row per
// OUTPUT channel (the transposed W layout), so every output activation is
// an int32 dot product of two contiguous int8 rows dequantized by a single
// sx·sw product — the per-row scheme never mixes scales inside a dot.
type QuantizedMat struct {
	Rows, Cols int
	Data       []int8
	Scales     []float32
}

// quantizeRowInto quantizes one finite f32 row into q (len(row) int8s) and
// returns the row scale. Non-finite input returns ErrNonFinite.
func quantizeRowInto(q []int8, row []float32) (float32, error) {
	var absmax float32
	for _, v := range row {
		if v != v || v > math.MaxFloat32 || v < -math.MaxFloat32 {
			return 0, ErrNonFinite
		}
		if v < 0 {
			v = -v
		}
		if v > absmax {
			absmax = v
		}
	}
	if absmax == 0 {
		for i := range q {
			q[i] = 0
		}
		return 0, nil
	}
	scale := absmax / 127
	inv := 127 / absmax
	for i, v := range row {
		s := v * inv
		// Round half away from zero; the product is bounded by ±127 by
		// construction so no clamp is needed beyond the rounding epsilon.
		if s >= 0 {
			s += 0.5
		} else {
			s -= 0.5
		}
		n := int32(s)
		if n > 127 {
			n = 127
		} else if n < -127 {
			n = -127
		}
		q[i] = int8(n)
	}
	return scale, nil
}

// QuantizeMat32 quantizes src row-by-row into a fresh QuantizedMat. It
// errors (without allocating the result) if src contains non-finite values.
func QuantizeMat32(src *Tensor32) (*QuantizedMat, error) {
	q := &QuantizedMat{
		Rows:   src.Rows,
		Cols:   src.Cols,
		Data:   make([]int8, src.Rows*src.Cols),
		Scales: make([]float32, src.Rows),
	}
	for i := 0; i < src.Rows; i++ {
		s, err := quantizeRowInto(q.Data[i*q.Cols:(i+1)*q.Cols], src.Row(i))
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		q.Scales[i] = s
	}
	return q, nil
}

// Row returns quantized row i aliasing the matrix storage.
func (q *QuantizedMat) Row(i int) []int8 { return q.Data[i*q.Cols : (i+1)*q.Cols] }

// ScaleStats returns the smallest and largest nonzero row scales (0, 0 when
// every row is zero). Published into the decision trace so int8 serving
// stays auditable: a scale blowing up flags an outlier weight row.
func (q *QuantizedMat) ScaleStats() (min, max float32) {
	for _, s := range q.Scales {
		if s == 0 {
			continue
		}
		if min == 0 || s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	return min, max
}

// Q8Scratch holds the per-call activation quantization buffers of the int8
// matmul. It is owned by one inference engine and reused across batches, so
// the warm path allocates nothing (pinned by an AllocsPerRun guard).
type Q8Scratch struct {
	qx []int8
	sx []float32
}

// GemmQ8 computes dst = x × Wᵀ through the int8 path: each x row is
// quantized per-row absmax into the scratch, every output element
// accumulates an int32 dot product of two int8 rows, and the result is
// dequantized with the product of the two row scales. Shapes: x m×k,
// w n×k (quantized), dst m×n. Non-finite activations return ErrNonFinite
// before any arithmetic — the guardrail path, never the kernel, owns
// non-finite data.
func (s *Q8Scratch) GemmQ8(dst, x *Tensor32, w *QuantizedMat) error {
	if x.Cols != w.Cols || dst.Rows != x.Rows || dst.Cols != w.Rows {
		panic(fmt.Sprintf("linalg: GemmQ8 shape mismatch C(%dx%d) A(%dx%d) Q(%dx%d)",
			dst.Rows, dst.Cols, x.Rows, x.Cols, w.Rows, w.Cols))
	}
	n := x.Rows * x.Cols
	if cap(s.qx) < n {
		s.qx = make([]int8, n)
	}
	s.qx = s.qx[:n]
	if cap(s.sx) < x.Rows {
		s.sx = make([]float32, x.Rows)
	}
	s.sx = s.sx[:x.Rows]
	for i := 0; i < x.Rows; i++ {
		sc, err := quantizeRowInto(s.qx[i*x.Cols:(i+1)*x.Cols], x.Row(i))
		if err != nil {
			return fmt.Errorf("activation row %d: %w", i, err)
		}
		s.sx[i] = sc
	}
	k := x.Cols
	flops := x.Rows * k * w.Rows
	if flops < parallelFlopCutoff || dst.Rows <= 1 {
		// Serial fast path keeps the warm quantized matvec zero-alloc (no
		// fan-out closure escapes to the heap).
		s.gemmQ8Range(dst, w, k, 0, dst.Rows)
		return nil
	}
	parallelRows(dst.Rows, flops, func(i0, i1 int) {
		s.gemmQ8Range(dst, w, k, i0, i1)
	})
	return nil
}

// gemmQ8Range computes dst rows [i0, i1) from the pre-quantized activation
// scratch. The dot accumulates in int32 (exact: |q| ≤ 127, so k ≤ 2^16 rows
// fit with headroom) and dequantizes through float64 so huge row scales
// cannot overflow the intermediate product when the true value fits in f32.
func (s *Q8Scratch) gemmQ8Range(dst *Tensor32, w *QuantizedMat, k, i0, i1 int) {
	for i := i0; i < i1; i++ {
		qrow := s.qx[i*k : (i+1)*k]
		crow := dst.Row(i)
		sxi := float64(s.sx[i])
		for j := 0; j < w.Rows; j++ {
			wrow := w.Data[j*k : (j+1)*k]
			var acc int32
			for p, qv := range qrow {
				acc += int32(qv) * int32(wrow[p])
			}
			crow[j] = float32(float64(acc) * sxi * float64(w.Scales[j]))
		}
	}
}

// RefGemmQ8 is the single-goroutine reference for the int8 matmul: it
// quantizes each activation row with the same scheme, then dequantizes every
// element explicitly and accumulates in float64. The differential tests use
// it to pin that the int32-accumulate fast path matches the arithmetic
// definition of the scheme, independent of the f32 dequant order.
func RefGemmQ8(dst, x *Tensor32, w *QuantizedMat) error {
	if x.Cols != w.Cols || dst.Rows != x.Rows || dst.Cols != w.Rows {
		panic("linalg: RefGemmQ8 shape mismatch")
	}
	qrow := make([]int8, x.Cols)
	for i := 0; i < x.Rows; i++ {
		sc, err := quantizeRowInto(qrow, x.Row(i))
		if err != nil {
			return fmt.Errorf("activation row %d: %w", i, err)
		}
		for j := 0; j < w.Rows; j++ {
			wrow := w.Row(j)
			var acc float64
			for p := range qrow {
				acc += float64(qrow[p]) * float64(sc) * float64(wrow[p]) * float64(w.Scales[j])
			}
			dst.Set(i, j, float32(acc))
		}
	}
	return nil
}

// QuantizeVec64 quantizes a float64 vector into q (same length) with the
// per-row absmax scheme and returns the scale; dequantization of element i
// is float64(q[i])*scale. Used by the knowledge store's int8 centroid match
// index, whose centroids live in float64 projected space. Non-finite input
// returns ErrNonFinite.
func QuantizeVec64(q []int8, row []float64) (float64, error) {
	if len(q) != len(row) {
		panic("linalg: QuantizeVec64 length mismatch")
	}
	var absmax float64
	for _, v := range row {
		if v != v || math.IsInf(v, 0) {
			return 0, ErrNonFinite
		}
		if v < 0 {
			v = -v
		}
		if v > absmax {
			absmax = v
		}
	}
	if absmax == 0 {
		for i := range q {
			q[i] = 0
		}
		return 0, nil
	}
	scale := absmax / 127
	inv := 127 / absmax
	for i, v := range row {
		s := v * inv
		if s >= 0 {
			s += 0.5
		} else {
			s -= 0.5
		}
		n := int32(s)
		if n > 127 {
			n = 127
		} else if n < -127 {
			n = -127
		}
		q[i] = int8(n)
	}
	return scale, nil
}

// Dot8 returns the int32 dot product of two equal-length int8 vectors.
func Dot8(a, b []int8) int32 {
	var acc int32
	for i, v := range a {
		acc += int32(v) * int32(b[i])
	}
	return acc
}
