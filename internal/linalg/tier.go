package linalg

import "fmt"

// KernelTier selects the arithmetic the inference plane runs on. The tiers
// form a strict precision ladder: TierF64 is the bitwise-reproducible oracle
// every other tier is differentially tested against, TierF32 halves memory
// traffic with the f32 kernel family, and TierInt8 additionally serves dense
// matmuls through per-row absmax int8 weights with int32 accumulation.
//
// The training plane always runs the f64 oracle tier regardless of the
// configured tier — speed tiers govern reads (the published snapshot and the
// knowledge-store match path), never parameter updates, so checkpoints and
// the prequential Table I/III protocol stay bitwise-reproducible.
type KernelTier uint8

const (
	// TierF64 is the default: the blocked float64 kernels, bitwise-stable
	// under blocking and row-parallel fan-out.
	TierF64 KernelTier = iota
	// TierF32 runs inference forwards on the float32 kernel family.
	TierF32
	// TierInt8 runs inference dense layers on int8-quantized weights
	// (per-row absmax, int32 accumulate, f32 dequant); convolution and
	// activation layers stay f32 within this tier.
	TierInt8
)

// String returns the flag spelling of the tier.
func (t KernelTier) String() string {
	switch t {
	case TierF64:
		return "f64"
	case TierF32:
		return "f32"
	case TierInt8:
		return "int8-infer"
	}
	return fmt.Sprintf("KernelTier(%d)", uint8(t))
}

// ParseKernelTier parses the flag spelling of a tier. The empty string is
// the f64 default so zero-valued configs stay on the oracle tier.
func ParseKernelTier(s string) (KernelTier, error) {
	switch s {
	case "", "f64":
		return TierF64, nil
	case "f32":
		return TierF32, nil
	case "int8-infer", "int8":
		return TierInt8, nil
	}
	return TierF64, fmt.Errorf("linalg: unknown kernel tier %q (want f64, f32, or int8-infer)", s)
}
