package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorAddSub(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Add(w); !got.Equal(Vector{5, 7, 9}, 1e-12) {
		t.Errorf("Add = %v", got)
	}
	if got := w.Sub(v); !got.Equal(Vector{3, 3, 3}, 1e-12) {
		t.Errorf("Sub = %v", got)
	}
}

func TestVectorAddPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vector{1}.Add(Vector{1, 2})
}

func TestVectorDotNormDistance(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Norm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := v.Dot(Vector{1, 1}); math.Abs(got-7) > 1e-12 {
		t.Errorf("Dot = %v, want 7", got)
	}
	if got := v.Distance(Vector{0, 0}); math.Abs(got-5) > 1e-12 {
		t.Errorf("Distance = %v, want 5", got)
	}
}

func TestVectorScaleAndNormalize(t *testing.T) {
	v := Vector{2, 0}
	s := v.Scale(3)
	if !s.Equal(Vector{6, 0}, 1e-12) {
		t.Errorf("Scale = %v", s)
	}
	s.Normalize()
	if math.Abs(s.Norm()-1) > 1e-12 {
		t.Errorf("normalized norm = %v", s.Norm())
	}
	z := Vector{0, 0}
	z.Normalize() // must not NaN
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("zero Normalize changed vector: %v", z)
	}
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone aliases original storage")
	}
}

func TestMeanAndErrors(t *testing.T) {
	if _, err := Mean(nil); err == nil {
		t.Error("Mean(nil) should error")
	}
	if _, err := Mean([]Vector{{1}, {1, 2}}); err == nil {
		t.Error("Mean with ragged rows should error")
	}
	m, err := Mean([]Vector{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(Vector{2, 3}, 1e-12) {
		t.Errorf("Mean = %v", m)
	}
}

func TestCovarianceKnownValues(t *testing.T) {
	rows := []Vector{{1, 0}, {-1, 0}, {0, 2}, {0, -2}}
	mean, err := Mean(rows)
	if err != nil {
		t.Fatal(err)
	}
	cov, err := Covariance(rows, mean)
	if err != nil {
		t.Fatal(err)
	}
	// Biased estimator: var(x)=2/4=0.5, var(y)=8/4=2, cov=0.
	if math.Abs(cov.At(0, 0)-0.5) > 1e-12 || math.Abs(cov.At(1, 1)-2) > 1e-12 {
		t.Errorf("diagonal = %v, %v", cov.At(0, 0), cov.At(1, 1))
	}
	if math.Abs(cov.At(0, 1)) > 1e-12 || math.Abs(cov.At(1, 0)) > 1e-12 {
		t.Errorf("off-diagonal nonzero: %v, %v", cov.At(0, 1), cov.At(1, 0))
	}
}

func TestCovarianceErrors(t *testing.T) {
	if _, err := Covariance(nil, Vector{0}); err == nil {
		t.Error("Covariance(nil) should error")
	}
	if _, err := Covariance([]Vector{{1, 2}}, Vector{0}); err == nil {
		t.Error("Covariance with mismatched mean should error")
	}
}

// clampVec maps arbitrary quick-generated floats into a numerically sane
// range so properties are not defeated by overflow to ±Inf.
func clampVec(xs []float64) Vector {
	v := NewVector(len(xs))
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		v[i] = math.Mod(x, 1e6)
	}
	return v
}

// Property: the triangle inequality holds for Distance.
func TestDistanceTriangleInequalityProperty(t *testing.T) {
	f := func(a, b, c [4]float64) bool {
		va := clampVec(a[:])
		vb := clampVec(b[:])
		vc := clampVec(c[:])
		ac := va.Distance(vc)
		return ac <= va.Distance(vb)+vb.Distance(vc)+1e-6*(1+ac)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Dot is symmetric and Norm² == Dot(v, v).
func TestDotSymmetryProperty(t *testing.T) {
	f := func(a, b [6]float64) bool {
		va, vb := clampVec(a[:]), clampVec(b[:])
		if math.Abs(va.Dot(vb)-vb.Dot(va)) > 1e-9 {
			return false
		}
		n := va.Norm()
		return math.Abs(n*n-va.Dot(va)) <= 1e-6*(1+math.Abs(va.Dot(va)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Mean of identical rows is that row.
func TestMeanIdenticalRowsProperty(t *testing.T) {
	f := func(row [5]float64, nSeed uint8) bool {
		n := int(nSeed%7) + 1
		base := NewVector(len(row))
		for i, x := range row {
			base[i] = math.Mod(x, 1e6) // keep magnitudes sane for exact-ish arithmetic
			if math.IsNaN(base[i]) {
				base[i] = 0
			}
		}
		rows := make([]Vector, n)
		for i := range rows {
			rows[i] = base.Clone()
		}
		m, err := Mean(rows)
		if err != nil {
			return false
		}
		return m.Equal(base, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCovarianceDiagonalNonNegativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(20)
		d := 1 + rng.Intn(6)
		rows := make([]Vector, n)
		for i := range rows {
			rows[i] = NewVector(d)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64()
			}
		}
		mean, err := Mean(rows)
		if err != nil {
			t.Fatal(err)
		}
		cov, err := Covariance(rows, mean)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < d; j++ {
			if cov.At(j, j) < -1e-12 {
				t.Fatalf("negative variance %v at %d", cov.At(j, j), j)
			}
		}
		if !cov.IsSymmetric(1e-9) {
			t.Fatal("covariance not symmetric")
		}
	}
}
