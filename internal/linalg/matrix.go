package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix whose rows are copies of the given
// vectors. All rows must have the same length.
func NewMatrixFromRows(rows []Vector) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	d := len(rows[0])
	m := NewMatrix(len(rows), d)
	for i, r := range rows {
		if len(r) != d {
			return nil, ErrDimensionMismatch
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) Vector {
	out := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns m × b via the blocked Gemm kernel (Matrix and Tensor share the
// row-major flat layout, so the views are free). It panics if the inner
// dimensions differ.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch (%dx%d)×(%dx%d)", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	Gemm(TensorView(out.Data, out.Rows, out.Cols),
		TensorView(m.Data, m.Rows, m.Cols),
		TensorView(b.Data, b.Rows, b.Cols))
	return out
}

// MulVec returns m × v. It panics if len(v) != m.Cols.
func (m *Matrix) MulVec(v Vector) Vector {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch (%dx%d)×%d", m.Rows, m.Cols, len(v)))
	}
	out := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Vector(m.Row(i)).Dot(v)
	}
	return out
}

// TMulVec returns mᵀ × v without materializing the transpose. It panics if
// len(v) != m.Rows.
func (m *Matrix) TMulVec(v Vector) Vector {
	if m.Rows != len(v) {
		panic(fmt.Sprintf("linalg: TMulVec shape mismatch (%dx%d)ᵀ×%d", m.Rows, m.Cols, len(v)))
	}
	out := NewVector(m.Cols)
	for i := 0; i < m.Rows; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		row := m.Row(i)
		for j := range out {
			out[j] += vi * row[j]
		}
	}
	return out
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}
