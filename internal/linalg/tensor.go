package linalg

import (
	"fmt"
	"runtime"
	"sync"
)

// Tensor is a dense, row-major 2-D tensor over one flat float64 buffer. It is
// the compute-core representation: every nn layer, the PCA projection, and
// the ensemble fusion run on Tensors so the hot loops are contiguous slice
// sweeps instead of per-row pointer chasing. Data is always sliced to exactly
// Rows*Cols elements (spare capacity may hide behind the slice for reuse).
type Tensor struct {
	Rows, Cols int
	Data       []float64
}

// NewTensor returns a zero tensor with the given shape.
func NewTensor(rows, cols int) *Tensor {
	if rows < 0 || cols < 0 {
		panic("linalg: negative tensor dimension")
	}
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// TensorView wraps existing flat storage in a tensor header without copying.
// It panics if len(data) != rows*cols. Parameter matrices (stored flat in
// nn.Param) enter the kernels this way.
func TensorView(data []float64, rows, cols int) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("linalg: TensorView len %d != %d×%d", len(data), rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: data}
}

// EnsureTensor returns t reshaped to rows×cols, reusing its buffer when
// capacity allows, or a fresh tensor when t is nil or too small. Element
// contents after the call are unspecified — callers overwrite. This is the
// scratch-buffer workhorse: steady-state batches hit the reuse path and
// allocate nothing.
func EnsureTensor(t *Tensor, rows, cols int) *Tensor {
	n := rows * cols
	if t == nil {
		return NewTensor(rows, cols)
	}
	if cap(t.Data) < n {
		t.Data = make([]float64, n)
	} else {
		t.Data = t.Data[:n]
	}
	t.Rows, t.Cols = rows, cols
	return t
}

// Row returns row i as a slice aliasing the tensor storage.
func (t *Tensor) Row(i int) []float64 { return t.Data[i*t.Cols : (i+1)*t.Cols] }

// At returns element (i, j).
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.Cols+j] }

// Set assigns element (i, j).
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.Cols+j] = v }

// Zero clears every element.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// CopyFrom makes t an exact copy of src, reusing t's buffer when possible.
func (t *Tensor) CopyFrom(src *Tensor) {
	*t = *EnsureTensor(t, src.Rows, src.Cols)
	copy(t.Data, src.Data)
}

// FromRows reshapes t to len(rows)×cols and copies the rows in. All rows must
// have length cols. cols disambiguates the width of an empty batch.
func (t *Tensor) FromRows(rows [][]float64, cols int) {
	*t = *EnsureTensor(t, len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("linalg: FromRows row %d has %d elements, want %d", i, len(r), cols))
		}
		copy(t.Row(i), r)
	}
}

// maxPooledTensorElems keeps one-off giant batches from pinning memory in a
// TensorPool forever (8 MiB of float64s).
const maxPooledTensorElems = 1 << 20

// TensorPool recycles tensor slabs across batches. It is the acquisition
// point for fused-batch staging: Get returns a tensor reshaped to the
// requested shape (contents unspecified), reusing a recycled slab when one
// fits. Callers must not Put a tensor whose rows a consumer still retains —
// the learner keeps labeled rows in its windows, so serve-side batch storage
// is only poolable on paths that pack-copy rows out first (the coalescer).
type TensorPool struct {
	pool sync.Pool
}

// Get returns a rows×cols tensor with unspecified contents.
func (p *TensorPool) Get(rows, cols int) *Tensor {
	t, _ := p.pool.Get().(*Tensor)
	return EnsureTensor(t, rows, cols)
}

// Put recycles t for a later Get. Nil and oversized tensors are dropped.
func (p *TensorPool) Put(t *Tensor) {
	if t == nil || cap(t.Data) > maxPooledTensorElems {
		return
	}
	p.pool.Put(t)
}

// ToRows returns the tensor as fresh [][]float64 rows. The row headers share
// one backing allocation, so the conversion costs two allocations regardless
// of batch size.
func (t *Tensor) ToRows() [][]float64 {
	flat := make([]float64, len(t.Data))
	copy(flat, t.Data)
	out := make([][]float64, t.Rows)
	for i := range out {
		out[i] = flat[i*t.Cols : (i+1)*t.Cols : (i+1)*t.Cols]
	}
	return out
}

// Axpy computes y[i] += a*x[i]. It panics if the lengths differ.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, xv := range x {
		y[i] += a * xv
	}
}

// gemmBlockK is the k-panel depth of the blocked kernels: 128 float64s of a
// B row panel (1 KiB) stay resident in L1 while a C row accumulates.
// Blocking only partitions the k loop — for any output element the
// summation order over k stays ascending, so blocked and naive kernels
// produce bitwise-identical results.
const gemmBlockK = 128

// parallelFlopCutoff is the mul-add count above which a kernel fans out
// across GOMAXPROCS goroutines, partitioned by output row. Below it the
// fan-out overhead (~µs) exceeds the win. Row partitioning never splits the
// per-element summation, so the parallel path is also bitwise-deterministic.
const parallelFlopCutoff = 1 << 16

// parallelRows splits [0, rows) into roughly equal chunks and runs body on
// each chunk, in parallel when flops crosses the cutoff. The fan-out mirrors
// internal/parallel's WaitGroup pattern; it lives here because linalg sits
// below that package in the dependency order.
func parallelRows(rows, flops int, body func(i0, i1 int)) {
	workers := runtime.GOMAXPROCS(0)
	if flops < parallelFlopCutoff || workers <= 1 || rows <= 1 {
		body(0, rows)
		return
	}
	if workers > rows {
		workers = rows
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for i0 := 0; i0 < rows; i0 += chunk {
		i1 := i0 + chunk
		if i1 > rows {
			i1 = rows
		}
		wg.Add(1)
		go func(i0, i1 int) {
			defer wg.Done()
			body(i0, i1)
		}(i0, i1)
	}
	wg.Wait()
}

func checkGemmShapes(op string, cRows, cCols, aRows, aCols, bRows, bCols int, c, a, b *Tensor) {
	if a.Rows != aRows || a.Cols != aCols || b.Rows != bRows || b.Cols != bCols || c.Rows != cRows || c.Cols != cCols {
		panic(fmt.Sprintf("linalg: %s shape mismatch C(%dx%d) A(%dx%d) B(%dx%d)",
			op, c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if len(a.Data) != a.Rows*a.Cols || len(b.Data) != b.Rows*b.Cols || len(c.Data) != c.Rows*c.Cols {
		panic(fmt.Sprintf("linalg: %s tensor data length inconsistent with shape", op))
	}
}

// Gemm computes C = A × B with the blocked kernel, parallel above the flop
// cutoff. Shapes: A m×k, B k×n, C m×n; C must not alias A or B.
func Gemm(c, a, b *Tensor) {
	checkGemmShapes("Gemm", a.Rows, b.Cols, a.Rows, a.Cols, a.Cols, b.Cols, c, a, b)
	parallelRows(c.Rows, a.Rows*a.Cols*b.Cols, func(i0, i1 int) {
		gemmRange(c, a, b, i0, i1, false)
	})
}

// GemmAdd computes C += A × B (same shapes and kernel as Gemm). Seeding C
// with a bias row before the call fuses the bias add into the product.
func GemmAdd(c, a, b *Tensor) {
	checkGemmShapes("GemmAdd", a.Rows, b.Cols, a.Rows, a.Cols, a.Cols, b.Cols, c, a, b)
	parallelRows(c.Rows, a.Rows*a.Cols*b.Cols, func(i0, i1 int) {
		gemmRange(c, a, b, i0, i1, true)
	})
}

// gemmRange accumulates C[i0:i1] (+)= A[i0:i1] × B. The i–k–j loop order
// streams B rows and keeps the current C row hot; k is additionally cut into
// gemmBlockK panels so each B panel is reused across the row range while
// still resident in cache. The axpy is inlined by hand: the gc inliner does
// not inline functions containing loops, and a call per k-step dominates
// skinny products.
func gemmRange(c, a, b *Tensor, i0, i1 int, accumulate bool) {
	if !accumulate {
		for i := i0; i < i1; i++ {
			crow := c.Row(i)
			for j := range crow {
				crow[j] = 0
			}
		}
	}
	k := a.Cols
	for k0 := 0; k0 < k; k0 += gemmBlockK {
		k1 := k0 + gemmBlockK
		if k1 > k {
			k1 = k
		}
		for i := i0; i < i1; i++ {
			arow := a.Row(i)
			crow := c.Row(i)
			for p := k0; p < k1; p++ {
				av := arow[p]
				brow := b.Row(p)
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
}

// GemmTA computes C = Aᵀ × B without materializing the transpose.
// Shapes: A k×m, B k×n, C m×n; C must not alias A or B.
func GemmTA(c, a, b *Tensor) {
	checkGemmShapes("GemmTA", a.Cols, b.Cols, a.Rows, a.Cols, a.Rows, b.Cols, c, a, b)
	parallelRows(c.Rows, a.Rows*a.Cols*b.Cols, func(i0, i1 int) {
		gemmTARange(c, a, b, i0, i1, false)
	})
}

// GemmTAAdd computes C += Aᵀ × B (same shapes as GemmTA). The backward
// passes use it to accumulate weight gradients straight into Param.Grad.
func GemmTAAdd(c, a, b *Tensor) {
	checkGemmShapes("GemmTAAdd", a.Cols, b.Cols, a.Rows, a.Cols, a.Rows, b.Cols, c, a, b)
	parallelRows(c.Rows, a.Rows*a.Cols*b.Cols, func(i0, i1 int) {
		gemmTARange(c, a, b, i0, i1, true)
	})
}

// gemmTARange accumulates C[i0:i1] (+)= (Aᵀ × B)[i0:i1]. The p-outer order
// streams A and B rows contiguously; the written C rows [i0:i1) form the
// reuse block.
func gemmTARange(c, a, b *Tensor, i0, i1 int, accumulate bool) {
	if !accumulate {
		for i := i0; i < i1; i++ {
			crow := c.Row(i)
			for j := range crow {
				crow[j] = 0
			}
		}
	}
	for p := 0; p < a.Rows; p++ {
		arow := a.Row(p)
		brow := b.Row(p)
		for i := i0; i < i1; i++ {
			av := arow[i]
			crow := c.Row(i)
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// GemmTB computes C = A × Bᵀ without materializing the transpose.
// Shapes: A m×k, B n×k, C m×n; C must not alias A or B. Each output element
// is a dot product of two contiguous rows, so this is the cache-friendly
// form when the shared dimension k is long.
func GemmTB(c, a, b *Tensor) {
	checkGemmShapes("GemmTB", a.Rows, b.Rows, a.Rows, a.Cols, b.Rows, a.Cols, c, a, b)
	parallelRows(c.Rows, a.Rows*a.Cols*b.Rows, func(i0, i1 int) {
		gemmTBRange(c, a, b, i0, i1, false)
	})
}

// GemmTBAdd computes C += A × Bᵀ (same shapes as GemmTB). With transposed
// operands it is the long-dot-product form of the weight-gradient update.
func GemmTBAdd(c, a, b *Tensor) {
	checkGemmShapes("GemmTBAdd", a.Rows, b.Rows, a.Rows, a.Cols, b.Rows, a.Cols, c, a, b)
	parallelRows(c.Rows, a.Rows*a.Cols*b.Rows, func(i0, i1 int) {
		gemmTBRange(c, a, b, i0, i1, true)
	})
}

func gemmTBRange(c, a, b *Tensor, i0, i1 int, accumulate bool) {
	for i := i0; i < i1; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float64
			for p, av := range arow {
				s += av * brow[p]
			}
			if accumulate {
				crow[j] += s
			} else {
				crow[j] = s
			}
		}
	}
}

// TransposeInto writes srcᵀ into dst, which must be pre-shaped to
// src.Cols × src.Rows. The layers materialize small transposed weight or
// gradient panels with it so every GEMM runs in its long-inner-loop form.
func TransposeInto(dst, src *Tensor) {
	if dst.Rows != src.Cols || dst.Cols != src.Rows {
		panic(fmt.Sprintf("linalg: TransposeInto shape %dx%d, want %dx%d",
			dst.Rows, dst.Cols, src.Cols, src.Rows))
	}
	for i := 0; i < src.Rows; i++ {
		srow := src.Row(i)
		for j, v := range srow {
			dst.Data[j*dst.Cols+i] = v
		}
	}
}

// RefGemm is the unblocked, single-goroutine reference for C = A × B. It is
// retained as the differential-test oracle for the optimized kernels and is
// not used on any hot path.
func RefGemm(c, a, b *Tensor) {
	checkGemmShapes("RefGemm", a.Rows, b.Cols, a.Rows, a.Cols, a.Cols, b.Cols, c, a, b)
	gemmRefRange(c, a, b)
}

func gemmRefRange(c, a, b *Tensor) {
	for i := 0; i < c.Rows; i++ {
		crow := c.Row(i)
		for j := range crow {
			crow[j] = 0
		}
		arow := a.Row(i)
		for p := 0; p < a.Cols; p++ {
			av := arow[p]
			brow := b.Row(p)
			for j := range crow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// RefGemmTA is the reference oracle for C = Aᵀ × B.
func RefGemmTA(c, a, b *Tensor) {
	checkGemmShapes("RefGemmTA", a.Cols, b.Cols, a.Rows, a.Cols, a.Rows, b.Cols, c, a, b)
	c.Zero()
	for p := 0; p < a.Rows; p++ {
		arow := a.Row(p)
		brow := b.Row(p)
		for i := 0; i < c.Rows; i++ {
			av := arow[i]
			crow := c.Row(i)
			for j := range crow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// RefGemmTB is the reference oracle for C = A × Bᵀ.
func RefGemmTB(c, a, b *Tensor) {
	checkGemmShapes("RefGemmTB", a.Rows, b.Rows, a.Rows, a.Cols, b.Rows, a.Cols, c, a, b)
	for i := 0; i < c.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float64
			for p := range arow {
				s += arow[p] * brow[p]
			}
			crow[j] = s
		}
	}
}
