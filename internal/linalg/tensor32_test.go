package linalg

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func randTensor32(rng *rand.Rand, rows, cols int) *Tensor32 {
	t := NewTensor32(rows, cols)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t
}

func widen(t *Tensor32) *Tensor {
	out := NewTensor(t.Rows, t.Cols)
	for i, v := range t.Data {
		out.Data[i] = float64(v)
	}
	return out
}

// gemmShapes32 covers the dispatch corners: skinny (below the parallel
// cutoff), k straddling one and several gemmBlockK32 panels, and wide-n.
var gemmShapes32 = []struct{ m, k, n int }{
	{1, 1, 1},
	{3, 7, 5},
	{8, 6, 2},
	{2, 300, 4},   // k crosses the f32 panel size
	{17, 257, 33}, // k crosses the panel, m across parallel chunks
	{64, 48, 64},
	{5, 640, 3},
}

// TestGemm32MatchesRef pins the blocked/parallel f32 kernels bitwise against
// the unblocked single-goroutine f32 references: blocking and row fan-out
// must not change the ascending-k summation order.
func TestGemm32MatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sh := range gemmShapes32 {
		t.Run(fmt.Sprintf("%dx%dx%d", sh.m, sh.k, sh.n), func(t *testing.T) {
			a := randTensor32(rng, sh.m, sh.k)
			b := randTensor32(rng, sh.k, sh.n)
			got, want := NewTensor32(sh.m, sh.n), NewTensor32(sh.m, sh.n)
			Gemm32(got, a, b)
			RefGemm32(want, a, b)
			requireEqual32(t, "Gemm32", got, want)

			at := NewTensor32(sh.k, sh.m)
			TransposeInto32(at, a)
			GemmTA32(got, at, b)
			RefGemmTA32(want, at, b)
			requireEqual32(t, "GemmTA32", got, want)

			bt := NewTensor32(sh.n, sh.k)
			TransposeInto32(bt, b)
			GemmTB32(got, a, bt)
			RefGemmTB32(want, a, bt)
			requireEqual32(t, "GemmTB32", got, want)

			// Add forms accumulate on a random seed.
			seed := randTensor32(rng, sh.m, sh.n)
			got.Data = append(got.Data[:0], seed.Data...)
			want.Data = append(want.Data[:0], seed.Data...)
			GemmAdd32(got, a, b)
			for i := 0; i < sh.m; i++ {
				arow := a.Row(i)
				crow := want.Row(i)
				for p := 0; p < sh.k; p++ {
					av := arow[p]
					brow := b.Row(p)
					for j, bv := range brow {
						crow[j] += av * bv
					}
				}
			}
			requireEqual32(t, "GemmAdd32", got, want)
		})
	}
}

func requireEqual32(t *testing.T, op string, got, want *Tensor32) {
	t.Helper()
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s element %d: got %g want %g (bitwise mismatch)", op, i, got.Data[i], want.Data[i])
		}
	}
}

// TestGemm32VsF64Oracle bounds the f32 tier against the f64 oracle with a
// per-shape relative epsilon: the drift of a length-k f32 accumulation is
// O(k·eps32), so the bound scales with the shared dimension.
func TestGemm32VsF64Oracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, sh := range gemmShapes32 {
		a32 := randTensor32(rng, sh.m, sh.k)
		b32 := randTensor32(rng, sh.k, sh.n)
		c32 := NewTensor32(sh.m, sh.n)
		Gemm32(c32, a32, b32)
		c64 := NewTensor(sh.m, sh.n)
		Gemm(c64, widen(a32), widen(b32))
		// eps32 ≈ 1.2e-7; k+1 terms with |a|,|b| ~ N(0,1) keeps a wide margin.
		eps := 1e-5 * float64(sh.k+1)
		for i := range c32.Data {
			ref := c64.Data[i]
			diff := math.Abs(float64(c32.Data[i]) - ref)
			tol := eps * math.Max(1, math.Abs(ref)+float64(sh.k))
			if diff > tol {
				t.Fatalf("shape %dx%dx%d element %d: f32 %g vs f64 %g (diff %g > tol %g)",
					sh.m, sh.k, sh.n, i, c32.Data[i], ref, diff, tol)
			}
		}
	}
}

// TestGemm32WarmZeroAlloc pins that the warm f32 GEMM path allocates
// nothing. The shape stays under the parallel cutoff so the measurement is
// not confused by fan-out goroutine stacks.
func TestGemm32WarmZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randTensor32(rng, 8, 32)
	b := randTensor32(rng, 32, 16)
	bt := NewTensor32(16, 32)
	TransposeInto32(bt, b)
	c := NewTensor32(8, 16)
	Gemm32(c, a, b) // warm
	if n := testing.AllocsPerRun(100, func() { Gemm32(c, a, b) }); n != 0 {
		t.Fatalf("warm Gemm32 allocated %.1f times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { GemmTB32(c, a, bt) }); n != 0 {
		t.Fatalf("warm GemmTB32 allocated %.1f times per run, want 0", n)
	}
}

// TestQuantizeRoundTrip bounds the absmax scheme's reconstruction error:
// every element is recovered within half a quantization step of its row.
func TestQuantizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := randTensor32(rng, 13, 41)
	src.Row(4)[7] = 0 // exercise exact zeros
	for j := range src.Row(6) {
		src.Row(6)[j] = 0 // all-zero row: scale 0
	}
	q, err := QuantizeMat32(src)
	if err != nil {
		t.Fatalf("QuantizeMat32: %v", err)
	}
	for i := 0; i < src.Rows; i++ {
		step := float64(q.Scales[i])
		for j, v := range src.Row(i) {
			dq := float64(q.Row(i)[j]) * step
			if diff := math.Abs(dq - float64(v)); diff > step/2+1e-9 {
				t.Fatalf("element (%d,%d): %g reconstructed as %g (err %g > step/2 %g)",
					i, j, v, dq, diff, step/2)
			}
		}
	}
	min, max := q.ScaleStats()
	if min <= 0 || max < min {
		t.Fatalf("ScaleStats: min %g max %g", min, max)
	}
}

// TestGemmQ8MatchesRef pins the int32-accumulate fast path against the
// explicit-dequant f64 reference of the same scheme. The two differ only in
// dequant rounding, so the tolerance is a few f32 ulps of the magnitude.
func TestGemmQ8MatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, sh := range gemmShapes32 {
		x := randTensor32(rng, sh.m, sh.k)
		w32 := randTensor32(rng, sh.n, sh.k)
		w, err := QuantizeMat32(w32)
		if err != nil {
			t.Fatalf("QuantizeMat32: %v", err)
		}
		var scr Q8Scratch
		got := NewTensor32(sh.m, sh.n)
		if err := scr.GemmQ8(got, x, w); err != nil {
			t.Fatalf("GemmQ8: %v", err)
		}
		want := NewTensor32(sh.m, sh.n)
		if err := RefGemmQ8(want, x, w); err != nil {
			t.Fatalf("RefGemmQ8: %v", err)
		}
		for i := range got.Data {
			diff := math.Abs(float64(got.Data[i]) - float64(want.Data[i]))
			tol := 1e-4 * math.Max(1, math.Abs(float64(want.Data[i])))
			if diff > tol {
				t.Fatalf("shape %dx%dx%d element %d: %g vs ref %g", sh.m, sh.k, sh.n, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestGemmQ8VsF64Oracle bounds the full int8 path against the exact f64
// product with the documented looser epsilon: absmax int8 carries ~1/254
// relative error per factor, so the bound is ~1% of the row magnitude scaled
// by the accumulation length.
func TestGemmQ8VsF64Oracle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, sh := range gemmShapes32 {
		x := randTensor32(rng, sh.m, sh.k)
		w32 := randTensor32(rng, sh.n, sh.k)
		w, err := QuantizeMat32(w32)
		if err != nil {
			t.Fatal(err)
		}
		var scr Q8Scratch
		got := NewTensor32(sh.m, sh.n)
		if err := scr.GemmQ8(got, x, w); err != nil {
			t.Fatal(err)
		}
		wT := NewTensor(sh.k, sh.n)
		TransposeInto(wT, widen(w32))
		want := NewTensor(sh.m, sh.n)
		Gemm(want, widen(x), wT)
		for i := 0; i < sh.m; i++ {
			// Per-row error budget: half a step in each factor across k terms.
			var rowMax float64
			for _, v := range x.Row(i) {
				rowMax = math.Max(rowMax, math.Abs(float64(v)))
			}
			for j := 0; j < sh.n; j++ {
				ref := want.At(i, j)
				diff := math.Abs(float64(got.At(i, j)) - ref)
				tol := 0.02 * float64(sh.k) * math.Max(rowMax, 1) * math.Max(float64(w.Scales[j])*127, 1) / 10
				if tol < 1e-3 {
					tol = 1e-3
				}
				if diff > tol {
					t.Fatalf("shape %dx%dx%d (%d,%d): int8 %g vs f64 %g (diff %g > tol %g)",
						sh.m, sh.k, sh.n, i, j, got.At(i, j), ref, diff, tol)
				}
			}
		}
	}
}

// TestGemmQ8WarmZeroAlloc pins the quantized matvec warm path at zero
// allocations (scratch reuse).
func TestGemmQ8WarmZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	x := randTensor32(rng, 1, 64) // matvec: one activation row
	w32 := randTensor32(rng, 8, 64)
	w, err := QuantizeMat32(w32)
	if err != nil {
		t.Fatal(err)
	}
	var scr Q8Scratch
	dst := NewTensor32(1, 8)
	if err := scr.GemmQ8(dst, x, w); err != nil { // warm
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := scr.GemmQ8(dst, x, w); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("warm GemmQ8 allocated %.1f times per run, want 0", n)
	}
}

// TestQuantizeRejectsNonFinite pins the guardrail contract: NaN/Inf input
// must surface ErrNonFinite from the quantizers, never reach the kernels.
func TestQuantizeRejectsNonFinite(t *testing.T) {
	for _, bad := range []float32{float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1))} {
		src := NewTensor32(2, 3)
		src.Set(1, 2, bad)
		if _, err := QuantizeMat32(src); err == nil {
			t.Fatalf("QuantizeMat32 accepted %g", bad)
		}
		w, err := QuantizeMat32(NewTensor32(3, 3))
		if err != nil {
			t.Fatal(err)
		}
		x := NewTensor32(2, 3)
		x.Set(0, 1, bad)
		var scr Q8Scratch
		if err := scr.GemmQ8(NewTensor32(2, 3), x, w); err == nil {
			t.Fatalf("GemmQ8 accepted activation %g", bad)
		}
	}
}

// benchGemmShape is the forward-pass shape the kernel benchmarks report:
// a coalesced 256-row batch through a 256→256 dense layer, big enough to
// be memory-bound, which is where the f32 tier's halved traffic shows.
const benchM, benchK, benchN = 256, 256, 256

func BenchmarkGemm64Forward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := NewTensor(benchM, benchK)
	bb := NewTensor(benchK, benchN)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range bb.Data {
		bb.Data[i] = rng.NormFloat64()
	}
	c := NewTensor(benchM, benchN)
	b.SetBytes(int64((benchM*benchK + benchK*benchN + benchM*benchN) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(c, a, bb)
	}
}

func BenchmarkGemm32Forward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randTensor32(rng, benchM, benchK)
	bb := randTensor32(rng, benchK, benchN)
	c := NewTensor32(benchM, benchN)
	b.SetBytes(int64((benchM*benchK + benchK*benchN + benchM*benchN) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm32(c, a, bb)
	}
}

func BenchmarkGemmQ8Forward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randTensor32(rng, benchM, benchK)
	w32 := randTensor32(rng, benchN, benchK)
	w, err := QuantizeMat32(w32)
	if err != nil {
		b.Fatal(err)
	}
	var scr Q8Scratch
	c := NewTensor32(benchM, benchN)
	b.SetBytes(int64(benchM*benchK*4 + benchK*benchN + benchM*benchN*4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := scr.GemmQ8(c, x, w); err != nil {
			b.Fatal(err)
		}
	}
}
