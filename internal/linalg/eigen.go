package linalg

import (
	"errors"
	"math"
	"sort"
)

// EigenResult holds the eigendecomposition of a symmetric matrix:
// Values[i] is the i-th eigenvalue (descending) and Vectors.Col(i) the
// corresponding unit eigenvector.
type EigenResult struct {
	Values  Vector
	Vectors *Matrix // columns are eigenvectors
}

// maxJacobiSweeps bounds the cyclic Jacobi iteration. Convergence for the
// covariance matrices FreewayML produces (d ≤ a few hundred) takes well under
// this many sweeps.
const maxJacobiSweeps = 100

// SymmetricEigen computes the full eigendecomposition of a symmetric matrix
// using the cyclic Jacobi rotation method. The input is not modified.
// Eigenpairs are returned in order of descending eigenvalue.
func SymmetricEigen(m *Matrix) (*EigenResult, error) {
	if m.Rows != m.Cols {
		return nil, errors.New("linalg: SymmetricEigen requires a square matrix")
	}
	if !m.IsSymmetric(1e-8) {
		return nil, errors.New("linalg: SymmetricEigen requires a symmetric matrix")
	}
	n := m.Rows
	a := m.Clone()
	v := Identity(n)

	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		off := offDiagonalNorm(a)
		if off < 1e-12 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				jacobiRotate(a, v, p, q)
			}
		}
	}

	// Extract and sort eigenpairs by descending eigenvalue.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{a.At(i, i), i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })

	res := &EigenResult{Values: NewVector(n), Vectors: NewMatrix(n, n)}
	for k, p := range pairs {
		res.Values[k] = p.val
		for i := 0; i < n; i++ {
			res.Vectors.Set(i, k, v.At(i, p.idx))
		}
	}
	return res, nil
}

// jacobiRotate applies a Jacobi rotation zeroing a[p][q], updating the
// accumulated eigenvector matrix v.
func jacobiRotate(a, v *Matrix, p, q int) {
	n := a.Rows
	apq := a.At(p, q)
	app := a.At(p, p)
	aqq := a.At(q, q)

	theta := (aqq - app) / (2 * apq)
	var t float64
	if theta >= 0 {
		t = 1 / (theta + math.Sqrt(1+theta*theta))
	} else {
		t = -1 / (-theta + math.Sqrt(1+theta*theta))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c

	for i := 0; i < n; i++ {
		aip := a.At(i, p)
		aiq := a.At(i, q)
		a.Set(i, p, c*aip-s*aiq)
		a.Set(i, q, s*aip+c*aiq)
	}
	for j := 0; j < n; j++ {
		apj := a.At(p, j)
		aqj := a.At(q, j)
		a.Set(p, j, c*apj-s*aqj)
		a.Set(q, j, s*apj+c*aqj)
	}
	for i := 0; i < n; i++ {
		vip := v.At(i, p)
		viq := v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func offDiagonalNorm(a *Matrix) float64 {
	var s float64
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if i != j {
				s += a.At(i, j) * a.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}
