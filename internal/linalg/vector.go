// Package linalg provides the dense linear-algebra primitives that the rest
// of FreewayML is built on: vectors, row-major matrices, means and
// covariances of sample sets, and a symmetric Jacobi eigendecomposition used
// by the PCA substrate.
//
// The package is deliberately small and allocation-conscious: streaming
// learning touches these routines on every batch, so all hot paths operate
// on caller-provided slices where practical.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when two operands have incompatible shapes.
var ErrDimensionMismatch = errors.New("linalg: dimension mismatch")

// Vector is a dense column of float64 values.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Add returns v + w. It panics if the lengths differ.
func (v Vector) Add(w Vector) Vector {
	mustSameLen(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w. It panics if the lengths differ.
func (v Vector) Sub(w Vector) Vector {
	mustSameLen(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// AddInPlace adds w into v element-wise.
func (v Vector) AddInPlace(w Vector) {
	mustSameLen(v, w)
	for i := range v {
		v[i] += w[i]
	}
}

// Scale returns c*v.
func (v Vector) Scale(c float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = c * v[i]
	}
	return out
}

// ScaleInPlace multiplies every element of v by c.
func (v Vector) ScaleInPlace(c float64) {
	for i := range v {
		v[i] *= c
	}
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) float64 {
	mustSameLen(v, w)
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean (L2) norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Distance returns the Euclidean distance between v and w.
func (v Vector) Distance(w Vector) float64 {
	mustSameLen(v, w)
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Normalize scales v to unit norm in place. Zero vectors are left unchanged.
func (v Vector) Normalize() {
	n := v.Norm()
	if n == 0 {
		return
	}
	v.ScaleInPlace(1 / n)
}

// Equal reports whether v and w have the same length and all elements are
// within tol of each other.
func (v Vector) Equal(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

func mustSameLen(v, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: vector length mismatch %d vs %d", len(v), len(w)))
	}
}

// Mean returns the element-wise mean of the rows. It returns an error if
// rows is empty or rows have inconsistent lengths.
func Mean(rows []Vector) (Vector, error) {
	if len(rows) == 0 {
		return nil, errors.New("linalg: Mean of empty set")
	}
	d := len(rows[0])
	mean := NewVector(d)
	for _, r := range rows {
		if len(r) != d {
			return nil, ErrDimensionMismatch
		}
		mean.AddInPlace(r)
	}
	mean.ScaleInPlace(1 / float64(len(rows)))
	return mean, nil
}

// Covariance returns the d×d sample covariance matrix of the rows around the
// given mean, normalized by n (matching Eq. 3 of the FreewayML paper, which
// uses the biased 1/n estimator).
func Covariance(rows []Vector, mean Vector) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, errors.New("linalg: Covariance of empty set")
	}
	d := len(mean)
	cov := NewMatrix(d, d)
	diff := NewVector(d)
	for _, r := range rows {
		if len(r) != d {
			return nil, ErrDimensionMismatch
		}
		for i := range r {
			diff[i] = r[i] - mean[i]
		}
		for i := 0; i < d; i++ {
			di := diff[i]
			row := cov.Row(i)
			for j := 0; j < d; j++ {
				row[j] += di * diff[j]
			}
		}
	}
	inv := 1 / float64(len(rows))
	for i := range cov.Data {
		cov.Data[i] *= inv
	}
	return cov, nil
}
