package linalg

import "testing"

// TestFromRowsWarmAllocs pins that restaging a batch of the same shape into a
// reused tensor is allocation-free — the property the binary ingest path's
// zero-alloc guarantee rests on.
func TestFromRowsWarmAllocs(t *testing.T) {
	const rows, cols = 16, 8
	flat := make([]float64, rows*cols)
	views := make([][]float64, rows)
	for i := range views {
		views[i] = flat[i*cols : (i+1)*cols : (i+1)*cols]
	}
	var dst Tensor
	dst.FromRows(views, cols)
	allocs := testing.AllocsPerRun(100, func() { dst.FromRows(views, cols) })
	if allocs != 0 {
		t.Fatalf("warm FromRows allocates %.1f, want 0", allocs)
	}
}

func TestTensorPool(t *testing.T) {
	var p TensorPool
	a := p.Get(4, 3)
	if a.Rows != 4 || a.Cols != 3 || len(a.Data) != 12 {
		t.Fatalf("Get shape %dx%d len %d", a.Rows, a.Cols, len(a.Data))
	}
	a.Data[0] = 42
	p.Put(a)
	b := p.Get(2, 3)
	if b.Rows != 2 || b.Cols != 3 {
		t.Fatalf("reused tensor shape %dx%d, want 2x3", b.Rows, b.Cols)
	}
	p.Put(nil) // must not panic
	big := NewTensor(1, maxPooledTensorElems+1)
	p.Put(big) // silently dropped
}
