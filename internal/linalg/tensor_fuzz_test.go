package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzGemmShapes drives the blocked/parallel kernels over arbitrary shapes
// and seeds and checks them against the naive references. The shape space is
// folded into [1, 90] per dimension so the fuzzer regularly crosses both the
// k-blocking boundary and the parallel cutoff.
func FuzzGemmShapes(f *testing.F) {
	f.Add(int8(1), int8(1), int8(1), int64(1))
	f.Add(int8(1), int8(17), int8(1), int64(2))
	f.Add(int8(9), int8(1), int8(13), int64(3))
	f.Add(int8(64), int8(64), int8(64), int64(4))
	f.Add(int8(-5), int8(0), int8(127), int64(5))
	f.Fuzz(func(t *testing.T, mRaw, kRaw, nRaw int8, seed int64) {
		fold := func(v int8) int {
			x := int(v)
			if x < 0 {
				x = -x
			}
			return x%90 + 1
		}
		m, k, n := fold(mRaw), fold(kRaw), fold(nRaw)
		rng := rand.New(rand.NewSource(seed))
		a := randFuzzTensor(rng, m, k)
		b := randFuzzTensor(rng, k, n)
		got := NewTensor(m, n)
		want := NewTensor(m, n)
		Gemm(got, a, b)
		RefGemm(want, a, b)
		compareFuzz(t, got, want, "Gemm")

		at := randFuzzTensor(rng, k, m)
		GemmTA(got, at, b)
		RefGemmTA(want, at, b)
		compareFuzz(t, got, want, "GemmTA")

		bt := randFuzzTensor(rng, n, k)
		GemmTB(got, a, bt)
		RefGemmTB(want, a, bt)
		compareFuzz(t, got, want, "GemmTB")
	})
}

func randFuzzTensor(rng *rand.Rand, rows, cols int) *Tensor {
	t := NewTensor(rows, cols)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

func compareFuzz(t *testing.T, got, want *Tensor, label string) {
	t.Helper()
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-9*(1+math.Abs(want.Data[i])) {
			t.Fatalf("%s: element %d = %v, want %v", label, i, got.Data[i], want.Data[i])
		}
	}
}
