package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 {
		t.Errorf("At/Set roundtrip failed: %v", m.Data)
	}
	if got := m.Row(1); got[2] != 5 {
		t.Errorf("Row = %v", got)
	}
	if got := m.Col(2); got[1] != 5 || got[0] != 0 {
		t.Errorf("Col = %v", got)
	}
}

func TestNewMatrixFromRows(t *testing.T) {
	m, err := NewMatrixFromRows([]Vector{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v", m.At(1, 0))
	}
	if _, err := NewMatrixFromRows([]Vector{{1}, {1, 2}}); err == nil {
		t.Error("ragged rows should error")
	}
	empty, err := NewMatrixFromRows(nil)
	if err != nil || empty.Rows != 0 {
		t.Errorf("empty rows: %v, %v", empty, err)
	}
}

func TestMatrixMul(t *testing.T) {
	a, _ := NewMatrixFromRows([]Vector{{1, 2}, {3, 4}})
	b, _ := NewMatrixFromRows([]Vector{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if math.Abs(c.At(i, j)-want[i][j]) > 1e-12 {
				t.Errorf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatrixMulVecAndTMulVec(t *testing.T) {
	a, _ := NewMatrixFromRows([]Vector{{1, 2}, {3, 4}, {5, 6}})
	v := a.MulVec(Vector{1, 1})
	if !v.Equal(Vector{3, 7, 11}, 1e-12) {
		t.Errorf("MulVec = %v", v)
	}
	w := a.TMulVec(Vector{1, 1, 1})
	if !w.Equal(Vector{9, 12}, 1e-12) {
		t.Errorf("TMulVec = %v", w)
	}
	// TMulVec must match T().MulVec.
	w2 := a.T().MulVec(Vector{1, 1, 1})
	if !w.Equal(w2, 1e-12) {
		t.Errorf("TMulVec %v != T().MulVec %v", w, w2)
	}
}

func TestMatrixMulPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(4, 7)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	tt := m.T().T()
	for i := range m.Data {
		if m.Data[i] != tt.Data[i] {
			t.Fatal("T().T() != original")
		}
	}
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMatrix(5, 5)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	p := Identity(5).Mul(m)
	for i := range m.Data {
		if math.Abs(p.Data[i]-m.Data[i]) > 1e-12 {
			t.Fatal("I×M != M")
		}
	}
}

func TestSymmetricEigenKnownMatrix(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m, _ := NewMatrixFromRows([]Vector{{2, 1}, {1, 2}})
	res, err := SymmetricEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Values[0]-3) > 1e-9 || math.Abs(res.Values[1]-1) > 1e-9 {
		t.Errorf("eigenvalues = %v", res.Values)
	}
	// Eigenvector for λ=3 should be parallel to (1,1)/√2.
	v0 := res.Vectors.Col(0)
	if math.Abs(math.Abs(v0[0])-math.Abs(v0[1])) > 1e-9 {
		t.Errorf("first eigenvector = %v", v0)
	}
}

func TestSymmetricEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		// Random symmetric matrix A = BᵀB.
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a := b.T().Mul(b)
		res, err := SymmetricEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		// Check A·v = λ·v for each eigenpair, and λ ≥ 0 (PSD input).
		for k := 0; k < n; k++ {
			v := res.Vectors.Col(k)
			av := a.MulVec(v)
			lv := v.Scale(res.Values[k])
			if !av.Equal(lv, 1e-6*(1+math.Abs(res.Values[k]))) {
				t.Fatalf("trial %d: A·v != λ·v for k=%d (λ=%v)", trial, k, res.Values[k])
			}
			if res.Values[k] < -1e-8 {
				t.Fatalf("trial %d: negative eigenvalue %v for PSD matrix", trial, res.Values[k])
			}
		}
		// Eigenvalues sorted descending.
		for k := 1; k < n; k++ {
			if res.Values[k] > res.Values[k-1]+1e-9 {
				t.Fatalf("eigenvalues not sorted: %v", res.Values)
			}
		}
		// Eigenvectors orthonormal.
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				d := res.Vectors.Col(i).Dot(res.Vectors.Col(j))
				want := 0.0
				if i == j {
					want = 1.0
				}
				if math.Abs(d-want) > 1e-7 {
					t.Fatalf("eigenvectors not orthonormal: <%d,%d> = %v", i, j, d)
				}
			}
		}
	}
}

func TestSymmetricEigenErrors(t *testing.T) {
	if _, err := SymmetricEigen(NewMatrix(2, 3)); err == nil {
		t.Error("non-square should error")
	}
	m, _ := NewMatrixFromRows([]Vector{{1, 2}, {3, 4}})
	if _, err := SymmetricEigen(m); err == nil {
		t.Error("asymmetric should error")
	}
}

func TestIsSymmetric(t *testing.T) {
	m, _ := NewMatrixFromRows([]Vector{{1, 2}, {2, 1}})
	if !m.IsSymmetric(1e-12) {
		t.Error("symmetric matrix reported asymmetric")
	}
	if NewMatrix(2, 3).IsSymmetric(1e-12) {
		t.Error("non-square reported symmetric")
	}
}
