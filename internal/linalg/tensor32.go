package linalg

import (
	"fmt"
	"runtime"
)

// Tensor32 is the float32 sibling of Tensor: a dense, row-major 2-D tensor
// over one flat float32 buffer. It is the storage type of the speed-tier
// kernels — half the memory traffic of the f64 oracle tier and twice the
// effective SIMD width for the compiler's auto-vectorizer. The f32 family
// mirrors the f64 kernels loop-for-loop (same blocking, same ascending-k
// summation order) so the two tiers differ only in precision, never in
// evaluation order: the f64 kernels remain the bitwise differential oracle.
type Tensor32 struct {
	Rows, Cols int
	Data       []float32
}

// NewTensor32 returns a zero tensor with the given shape.
func NewTensor32(rows, cols int) *Tensor32 {
	if rows < 0 || cols < 0 {
		panic("linalg: negative tensor dimension")
	}
	return &Tensor32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Tensor32View wraps existing flat storage in a tensor header without
// copying. It panics if len(data) != rows*cols.
func Tensor32View(data []float32, rows, cols int) *Tensor32 {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("linalg: Tensor32View len %d != %d×%d", len(data), rows, cols))
	}
	return &Tensor32{Rows: rows, Cols: cols, Data: data}
}

// EnsureTensor32 returns t reshaped to rows×cols, reusing its buffer when
// capacity allows, or a fresh tensor when t is nil or too small. Element
// contents after the call are unspecified — callers overwrite.
func EnsureTensor32(t *Tensor32, rows, cols int) *Tensor32 {
	n := rows * cols
	if t == nil {
		return NewTensor32(rows, cols)
	}
	if cap(t.Data) < n {
		t.Data = make([]float32, n)
	} else {
		t.Data = t.Data[:n]
	}
	t.Rows, t.Cols = rows, cols
	return t
}

// Row returns row i as a slice aliasing the tensor storage.
func (t *Tensor32) Row(i int) []float32 { return t.Data[i*t.Cols : (i+1)*t.Cols] }

// At returns element (i, j).
func (t *Tensor32) At(i, j int) float32 { return t.Data[i*t.Cols+j] }

// Set assigns element (i, j).
func (t *Tensor32) Set(i, j int, v float32) { t.Data[i*t.Cols+j] = v }

// Zero clears every element.
func (t *Tensor32) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// FromRows32 reshapes t to len(rows)×cols and copies the rows in. All rows
// must have length cols. cols disambiguates the width of an empty batch.
func (t *Tensor32) FromRows32(rows [][]float32, cols int) {
	*t = *EnsureTensor32(t, len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("linalg: FromRows32 row %d has %d elements, want %d", i, len(r), cols))
		}
		copy(t.Row(i), r)
	}
}

// FromRows64 reshapes t and narrows f64 rows into the f32 buffer. It is the
// tier-boundary staging copy: callers on the f64 plane pay it once per batch
// when opting into the speed tier.
func (t *Tensor32) FromRows64(rows [][]float64, cols int) {
	*t = *EnsureTensor32(t, len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("linalg: FromRows64 row %d has %d elements, want %d", i, len(r), cols))
		}
		dst := t.Row(i)
		for j, v := range r {
			dst[j] = float32(v)
		}
	}
}

// Rows32 returns the tensor as row headers aliasing the flat storage — no
// copy, so mutating a returned row mutates the tensor.
func (t *Tensor32) Rows32() [][]float32 {
	out := make([][]float32, t.Rows)
	for i := range out {
		out[i] = t.Row(i)
	}
	return out
}

// Widen64Into writes the tensor's values into dst as float64, reshaping dst
// as needed, and returns dst. The inverse staging copy of FromRows64.
func (t *Tensor32) Widen64Into(dst *Tensor) *Tensor {
	dst = EnsureTensor(dst, t.Rows, t.Cols)
	for i, v := range t.Data {
		dst.Data[i] = float64(v)
	}
	return dst
}

// Axpy32 computes y[i] += a*x[i]. It panics if the lengths differ.
func Axpy32(a float32, x, y []float32) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy32 length mismatch %d vs %d", len(x), len(y)))
	}
	for i, xv := range x {
		y[i] += a * xv
	}
}

// Dot32 returns the dot product of two equal-length f32 slices, accumulated
// in float32 in ascending index order (matching the kernel summation order).
func Dot32(x, y []float32) float32 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Dot32 length mismatch %d vs %d", len(x), len(y)))
	}
	var s float32
	for i, xv := range x {
		s += xv * y[i]
	}
	return s
}

// gemmBlockK32 is the k-panel depth of the blocked f32 kernels: 256 float32s
// of a B row panel (1 KiB, the same cache footprint as the f64 panel) stay
// resident in L1 while a C row accumulates. As in the f64 family, blocking
// only partitions the k loop — the per-element summation order stays
// ascending, so blocked and naive f32 kernels agree bitwise with each other
// (though not, of course, with the f64 tier).
const gemmBlockK32 = 256

func checkGemmShapes32(op string, cRows, cCols, aRows, aCols, bRows, bCols int, c, a, b *Tensor32) {
	if a.Rows != aRows || a.Cols != aCols || b.Rows != bRows || b.Cols != bCols || c.Rows != cRows || c.Cols != cCols {
		panic(fmt.Sprintf("linalg: %s shape mismatch C(%dx%d) A(%dx%d) B(%dx%d)",
			op, c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if len(a.Data) != a.Rows*a.Cols || len(b.Data) != b.Rows*b.Cols || len(c.Data) != c.Rows*c.Cols {
		panic(fmt.Sprintf("linalg: %s tensor data length inconsistent with shape", op))
	}
}

// Gemm32 computes C = A × B with the blocked f32 kernel, parallel above the
// flop cutoff. Shapes: A m×k, B k×n, C m×n; C must not alias A or B.
func Gemm32(c, a, b *Tensor32) {
	checkGemmShapes32("Gemm32", a.Rows, b.Cols, a.Rows, a.Cols, a.Cols, b.Cols, c, a, b)
	flops := a.Rows * a.Cols * b.Cols
	if flops < parallelFlopCutoff || runtime.GOMAXPROCS(0) <= 1 || c.Rows <= 1 {
		// Serial fast path: skipping the fan-out helper keeps the warm
		// small-batch call zero-alloc (no closure escapes to the heap).
		gemmRange32(c, a, b, 0, c.Rows, false)
		return
	}
	parallelRows(c.Rows, flops, func(i0, i1 int) {
		gemmRange32(c, a, b, i0, i1, false)
	})
}

// GemmAdd32 computes C += A × B (same shapes and kernel as Gemm32). Seeding
// C with a bias row before the call fuses the bias add into the product.
func GemmAdd32(c, a, b *Tensor32) {
	checkGemmShapes32("GemmAdd32", a.Rows, b.Cols, a.Rows, a.Cols, a.Cols, b.Cols, c, a, b)
	flops := a.Rows * a.Cols * b.Cols
	if flops < parallelFlopCutoff || runtime.GOMAXPROCS(0) <= 1 || c.Rows <= 1 {
		// Serial fast path: skipping the fan-out helper keeps the warm
		// small-batch call zero-alloc (no closure escapes to the heap).
		gemmRange32(c, a, b, 0, c.Rows, true)
		return
	}
	parallelRows(c.Rows, flops, func(i0, i1 int) {
		gemmRange32(c, a, b, i0, i1, true)
	})
}

// gemmRange32 accumulates C[i0:i1] (+)= A[i0:i1] × B — the i–k–j order of
// gemmRange with f32 operands. The inner j loop is a flat contiguous
// multiply-add sweep over two f32 slices, the shape the gc compiler
// vectorizes best.
func gemmRange32(c, a, b *Tensor32, i0, i1 int, accumulate bool) {
	if !accumulate {
		for i := i0; i < i1; i++ {
			crow := c.Row(i)
			for j := range crow {
				crow[j] = 0
			}
		}
	}
	k := a.Cols
	for k0 := 0; k0 < k; k0 += gemmBlockK32 {
		k1 := k0 + gemmBlockK32
		if k1 > k {
			k1 = k
		}
		for i := i0; i < i1; i++ {
			arow := a.Row(i)
			crow := c.Row(i)
			for p := k0; p < k1; p++ {
				av := arow[p]
				brow := b.Row(p)
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
}

// GemmTA32 computes C = Aᵀ × B without materializing the transpose.
// Shapes: A k×m, B k×n, C m×n; C must not alias A or B.
func GemmTA32(c, a, b *Tensor32) {
	checkGemmShapes32("GemmTA32", a.Cols, b.Cols, a.Rows, a.Cols, a.Rows, b.Cols, c, a, b)
	flops := a.Rows * a.Cols * b.Cols
	if flops < parallelFlopCutoff || runtime.GOMAXPROCS(0) <= 1 || c.Rows <= 1 {
		// Serial fast path: skipping the fan-out helper keeps the warm
		// small-batch call zero-alloc (no closure escapes to the heap).
		gemmTARange32(c, a, b, 0, c.Rows, false)
		return
	}
	parallelRows(c.Rows, flops, func(i0, i1 int) {
		gemmTARange32(c, a, b, i0, i1, false)
	})
}

// GemmTAAdd32 computes C += Aᵀ × B (same shapes as GemmTA32).
func GemmTAAdd32(c, a, b *Tensor32) {
	checkGemmShapes32("GemmTAAdd32", a.Cols, b.Cols, a.Rows, a.Cols, a.Rows, b.Cols, c, a, b)
	flops := a.Rows * a.Cols * b.Cols
	if flops < parallelFlopCutoff || runtime.GOMAXPROCS(0) <= 1 || c.Rows <= 1 {
		// Serial fast path: skipping the fan-out helper keeps the warm
		// small-batch call zero-alloc (no closure escapes to the heap).
		gemmTARange32(c, a, b, 0, c.Rows, true)
		return
	}
	parallelRows(c.Rows, flops, func(i0, i1 int) {
		gemmTARange32(c, a, b, i0, i1, true)
	})
}

func gemmTARange32(c, a, b *Tensor32, i0, i1 int, accumulate bool) {
	if !accumulate {
		for i := i0; i < i1; i++ {
			crow := c.Row(i)
			for j := range crow {
				crow[j] = 0
			}
		}
	}
	for p := 0; p < a.Rows; p++ {
		arow := a.Row(p)
		brow := b.Row(p)
		for i := i0; i < i1; i++ {
			av := arow[i]
			crow := c.Row(i)
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// GemmTB32 computes C = A × Bᵀ without materializing the transpose.
// Shapes: A m×k, B n×k, C m×n; C must not alias A or B. Each output element
// is a dot product of two contiguous f32 rows — the cache-friendly form when
// the shared dimension k is long, and the form the inference engine's dense
// layers use (weights pre-transposed once at compile time).
func GemmTB32(c, a, b *Tensor32) {
	checkGemmShapes32("GemmTB32", a.Rows, b.Rows, a.Rows, a.Cols, b.Rows, a.Cols, c, a, b)
	flops := a.Rows * a.Cols * b.Rows
	if flops < parallelFlopCutoff || runtime.GOMAXPROCS(0) <= 1 || c.Rows <= 1 {
		// Serial fast path: skipping the fan-out helper keeps the warm
		// small-batch call zero-alloc (no closure escapes to the heap).
		gemmTBRange32(c, a, b, 0, c.Rows, false)
		return
	}
	parallelRows(c.Rows, flops, func(i0, i1 int) {
		gemmTBRange32(c, a, b, i0, i1, false)
	})
}

// GemmTBAdd32 computes C += A × Bᵀ (same shapes as GemmTB32).
func GemmTBAdd32(c, a, b *Tensor32) {
	checkGemmShapes32("GemmTBAdd32", a.Rows, b.Rows, a.Rows, a.Cols, b.Rows, a.Cols, c, a, b)
	flops := a.Rows * a.Cols * b.Rows
	if flops < parallelFlopCutoff || runtime.GOMAXPROCS(0) <= 1 || c.Rows <= 1 {
		// Serial fast path: skipping the fan-out helper keeps the warm
		// small-batch call zero-alloc (no closure escapes to the heap).
		gemmTBRange32(c, a, b, 0, c.Rows, true)
		return
	}
	parallelRows(c.Rows, flops, func(i0, i1 int) {
		gemmTBRange32(c, a, b, i0, i1, true)
	})
}

func gemmTBRange32(c, a, b *Tensor32, i0, i1 int, accumulate bool) {
	for i := i0; i < i1; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			if accumulate {
				crow[j] += s
			} else {
				crow[j] = s
			}
		}
	}
}

// TransposeInto32 writes srcᵀ into dst, which must be pre-shaped to
// src.Cols × src.Rows.
func TransposeInto32(dst, src *Tensor32) {
	if dst.Rows != src.Cols || dst.Cols != src.Rows {
		panic(fmt.Sprintf("linalg: TransposeInto32 shape %dx%d, want %dx%d",
			dst.Rows, dst.Cols, src.Cols, src.Rows))
	}
	for i := 0; i < src.Rows; i++ {
		srow := src.Row(i)
		for j, v := range srow {
			dst.Data[j*dst.Cols+i] = v
		}
	}
}

// RefGemm32 is the unblocked, single-goroutine f32 reference for C = A × B,
// the differential-test oracle for the blocked f32 kernel (bitwise: both sum
// over k in ascending order).
func RefGemm32(c, a, b *Tensor32) {
	checkGemmShapes32("RefGemm32", a.Rows, b.Cols, a.Rows, a.Cols, a.Cols, b.Cols, c, a, b)
	for i := 0; i < c.Rows; i++ {
		crow := c.Row(i)
		for j := range crow {
			crow[j] = 0
		}
		arow := a.Row(i)
		for p := 0; p < a.Cols; p++ {
			av := arow[p]
			brow := b.Row(p)
			for j := range crow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// RefGemmTA32 is the f32 reference oracle for C = Aᵀ × B.
func RefGemmTA32(c, a, b *Tensor32) {
	checkGemmShapes32("RefGemmTA32", a.Cols, b.Cols, a.Rows, a.Cols, a.Rows, b.Cols, c, a, b)
	c.Zero()
	for p := 0; p < a.Rows; p++ {
		arow := a.Row(p)
		brow := b.Row(p)
		for i := 0; i < c.Rows; i++ {
			av := arow[i]
			crow := c.Row(i)
			for j := range crow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// RefGemmTB32 is the f32 reference oracle for C = A × Bᵀ.
func RefGemmTB32(c, a, b *Tensor32) {
	checkGemmShapes32("RefGemmTB32", a.Rows, b.Rows, a.Rows, a.Cols, b.Rows, a.Cols, c, a, b)
	for i := 0; i < c.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float32
			for p := range arow {
				s += arow[p] * brow[p]
			}
			crow[j] = s
		}
	}
}
