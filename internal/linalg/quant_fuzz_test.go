package linalg

import (
	"errors"
	"math"
	"testing"
)

// FuzzQuantRoundTrip drives arbitrary values through the f64 → f32 → int8
// round trip. Finite rows must reconstruct within half a quantization step
// and the int8 matmul must stay finite; any NaN/Inf in a row must surface
// ErrNonFinite from the quantizer (the guardrail path) — the kernels must
// never be reached with, nor ever emit, non-finite values.
func FuzzQuantRoundTrip(f *testing.F) {
	f.Add(1.0, -2.5, 0.0, 3e30)
	f.Add(math.NaN(), 1.0, 2.0, 3.0)
	f.Add(math.Inf(1), math.Inf(-1), 1e-40, -0.0)
	f.Add(1e308, -1e308, 127.0, -127.0)
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		row64 := []float64{a, b, c, d}
		src := NewTensor32(1, 4)
		finite := true
		for j, v := range row64 {
			src.Data[j] = float32(v)
			// f64 → f32 narrowing can itself create Inf from huge finite
			// f64s; the quantizer sees only the f32 values.
			if f32 := src.Data[j]; f32 != f32 || math.IsInf(float64(f32), 0) {
				finite = false
			}
		}
		q, err := QuantizeMat32(src)
		if !finite {
			if !errors.Is(err, ErrNonFinite) {
				t.Fatalf("non-finite row quantized without ErrNonFinite (err=%v)", err)
			}
			// GemmQ8 must take the same guardrail exit for activations.
			w, werr := QuantizeMat32(NewTensor32(2, 4))
			if werr != nil {
				t.Fatal(werr)
			}
			var scr Q8Scratch
			if err := scr.GemmQ8(NewTensor32(1, 2), src, w); !errors.Is(err, ErrNonFinite) {
				t.Fatalf("non-finite activations passed GemmQ8 (err=%v)", err)
			}
			return
		}
		if err != nil {
			t.Fatalf("finite row rejected: %v", err)
		}
		step := float64(q.Scales[0])
		for j, v := range src.Data {
			dq := float64(q.Data[j]) * step
			if diff := math.Abs(dq - float64(v)); diff > step/2+1e-9 {
				t.Fatalf("element %d: %g reconstructed as %g (err %g > %g)", j, v, dq, diff, step/2)
			}
		}
		// Full round trip through the int8 matmul stays finite whenever the
		// true product fits in float32 (a row dotted with itself is bounded
		// by k·absmax²; beyond f32 range, overflow to ±Inf is the correct
		// saturation, not a kernel bug).
		var scr Q8Scratch
		dst := NewTensor32(1, 1)
		if err := scr.GemmQ8(dst, src, q); err != nil {
			t.Fatalf("GemmQ8 on finite input: %v", err)
		}
		bound := 4 * float64(step*127) * float64(step*127)
		out := dst.At(0, 0)
		if bound < math.MaxFloat32/2 && (out != out || math.IsInf(float64(out), 0)) {
			t.Fatalf("int8 matmul emitted non-finite %g from finite input (bound %g)", out, bound)
		}
	})
}
