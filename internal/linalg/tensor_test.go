package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func randTensor(rng *rand.Rand, rows, cols int) *Tensor {
	t := NewTensor(rows, cols)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

func tensorsClose(t *testing.T, got, want *Tensor, tol float64, label string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > tol*(1+math.Abs(want.Data[i])) {
			t.Fatalf("%s: element %d = %v, want %v", label, i, got.Data[i], want.Data[i])
		}
	}
}

// gemmShapes covers the degenerate and non-block-multiple cases the blocked
// and parallel paths must not mishandle: 1×1, 1×N, N×1, shapes straddling
// gemmBlockK, and shapes large enough to cross parallelFlopCutoff.
var gemmShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 1},
	{1, 1, 9},
	{5, 1, 3},
	{3, 4, 5},
	{2, gemmBlockK, 2},
	{3, gemmBlockK + 1, 3},
	{7, 2*gemmBlockK - 1, 5},
	{64, 64, 64},  // above parallelFlopCutoff: exercises the goroutine path
	{97, 131, 53}, // parallel + nothing divides evenly
}

func TestGemmMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, s := range gemmShapes {
		a := randTensor(rng, s.m, s.k)
		b := randTensor(rng, s.k, s.n)
		got := NewTensor(s.m, s.n)
		want := NewTensor(s.m, s.n)
		Gemm(got, a, b)
		RefGemm(want, a, b)
		tensorsClose(t, got, want, 1e-9, "Gemm")

		// GemmAdd on a seeded C equals reference plus the seed.
		seed := randTensor(rng, s.m, s.n)
		acc := NewTensor(s.m, s.n)
		acc.CopyFrom(seed)
		GemmAdd(acc, a, b)
		for i := range want.Data {
			want.Data[i] += seed.Data[i]
		}
		tensorsClose(t, acc, want, 1e-9, "GemmAdd")
	}
}

func TestGemmTAMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, s := range gemmShapes {
		// A is k×m so Aᵀ×B is m×n.
		a := randTensor(rng, s.k, s.m)
		b := randTensor(rng, s.k, s.n)
		got := NewTensor(s.m, s.n)
		want := NewTensor(s.m, s.n)
		GemmTA(got, a, b)
		RefGemmTA(want, a, b)
		tensorsClose(t, got, want, 1e-9, "GemmTA")

		seed := randTensor(rng, s.m, s.n)
		acc := NewTensor(s.m, s.n)
		acc.CopyFrom(seed)
		GemmTAAdd(acc, a, b)
		for i := range want.Data {
			want.Data[i] += seed.Data[i]
		}
		tensorsClose(t, acc, want, 1e-9, "GemmTAAdd")
	}
}

func TestGemmTBMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, s := range gemmShapes {
		a := randTensor(rng, s.m, s.k)
		b := randTensor(rng, s.n, s.k)
		got := NewTensor(s.m, s.n)
		want := NewTensor(s.m, s.n)
		GemmTB(got, a, b)
		RefGemmTB(want, a, b)
		tensorsClose(t, got, want, 1e-9, "GemmTB")
	}
}

func TestGemmAgainstMatrixMul(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	am := NewMatrix(6, 5)
	bm := NewMatrix(5, 4)
	for i := range am.Data {
		am.Data[i] = rng.NormFloat64()
	}
	for i := range bm.Data {
		bm.Data[i] = rng.NormFloat64()
	}
	cm := am.Mul(bm)
	got := NewTensor(6, 4)
	Gemm(got, TensorView(am.Data, 6, 5), TensorView(bm.Data, 5, 4))
	tensorsClose(t, got, TensorView(cm.Data, 6, 4), 1e-12, "Matrix.Mul vs Gemm")
}

func TestGemmShapePanics(t *testing.T) {
	cases := []func(){
		func() { Gemm(NewTensor(2, 2), NewTensor(2, 3), NewTensor(4, 2)) },
		func() { Gemm(NewTensor(3, 2), NewTensor(2, 3), NewTensor(3, 2)) },
		func() { GemmTA(NewTensor(3, 2), NewTensor(2, 3), NewTensor(3, 2)) },
		func() { GemmTB(NewTensor(2, 2), NewTensor(2, 3), NewTensor(2, 4)) },
		func() { TensorView(make([]float64, 5), 2, 3) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestEnsureTensorReusesBuffer(t *testing.T) {
	a := NewTensor(4, 8)
	data := &a.Data[0]
	b := EnsureTensor(a, 2, 4)
	if b != a || &b.Data[0] != data {
		t.Fatal("EnsureTensor should reuse the buffer when shrinking")
	}
	if b.Rows != 2 || b.Cols != 4 || len(b.Data) != 8 {
		t.Fatalf("bad reshape: %dx%d len %d", b.Rows, b.Cols, len(b.Data))
	}
	c := EnsureTensor(a, 10, 10)
	if len(c.Data) != 100 {
		t.Fatal("EnsureTensor should grow the buffer")
	}
	if got := EnsureTensor(nil, 3, 3); got == nil || len(got.Data) != 9 {
		t.Fatal("EnsureTensor(nil) should allocate")
	}
}

func TestTensorRowsRoundtrip(t *testing.T) {
	rows := [][]float64{{1, 2, 3}, {4, 5, 6}}
	var tt Tensor
	tt.FromRows(rows, 3)
	back := tt.ToRows()
	for i := range rows {
		for j := range rows[i] {
			if back[i][j] != rows[i][j] {
				t.Fatalf("roundtrip mismatch at (%d,%d)", i, j)
			}
		}
	}
	// ToRows must copy: mutating the result leaves the tensor intact.
	back[0][0] = 99
	if tt.At(0, 0) != 1 {
		t.Fatal("ToRows aliases tensor storage")
	}
	// Empty batch keeps its width.
	tt.FromRows(nil, 5)
	if tt.Rows != 0 || tt.Cols != 5 {
		t.Fatalf("empty FromRows: %dx%d", tt.Rows, tt.Cols)
	}
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 2, 3}
	Axpy(2, []float64{10, 20, 30}, y)
	want := []float64{21, 42, 63}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy = %v, want %v", y, want)
		}
	}
}

// TestParallelGemmRace hammers the parallel kernel path from many goroutines
// sharing read-only A and B with distinct C buffers — the exact pattern the
// nn layers produce when parallel.Group members train concurrently. Run
// under -race (make check does) to verify the fan-out is data-race free.
func TestParallelGemmRace(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	a := randTensor(rng, 80, 80)
	b := randTensor(rng, 80, 80)
	want := NewTensor(80, 80)
	RefGemm(want, a, b)
	done := make(chan *Tensor, 8)
	for g := 0; g < 8; g++ {
		go func() {
			c := NewTensor(80, 80)
			for iter := 0; iter < 10; iter++ {
				Gemm(c, a, b)
				GemmTA(c, a, b)
				GemmTB(c, a, b)
				Gemm(c, a, b)
			}
			done <- c
		}()
	}
	for g := 0; g < 8; g++ {
		tensorsClose(t, <-done, want, 1e-9, "concurrent Gemm")
	}
}
