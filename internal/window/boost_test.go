package window

import (
	"testing"

	"freewayml/internal/linalg"
)

func TestDecayBoostAcceleratesDecay(t *testing.T) {
	run := func(boost float64) float64 {
		cfg := DefaultConfig()
		cfg.MaxBatches = 100
		w, _ := New(cfg)
		w.SetDecayBoost(boost)
		x, y := mkBatch(4, 0, 0)
		for i := 0; i < 5; i++ {
			if _, err := w.Push(x, y, linalg.Vector{float64(i), 0}); err != nil {
				t.Fatal(err)
			}
		}
		return w.Entries()[0].Weight // oldest surviving entry
	}
	plain := run(1)
	boosted := run(2.5)
	if boosted >= plain {
		t.Errorf("boosted weight %v not below plain %v", boosted, plain)
	}
}

func TestDecayBoostClampedBelowOne(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxBatches = 100
	w, _ := New(cfg)
	w.SetDecayBoost(0.1) // must clamp to 1, never slow decay below baseline
	x, y := mkBatch(4, 0, 0)
	if _, err := w.Push(x, y, linalg.Vector{0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Push(x, y, linalg.Vector{1, 0}); err != nil {
		t.Fatal(err)
	}
	if w.decayBoost != 1 {
		t.Errorf("decayBoost = %v, want clamped 1", w.decayBoost)
	}
}
