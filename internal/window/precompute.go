package window

import (
	"errors"

	"freewayml/internal/nn"
)

// Precomputer implements the pre-computing window mechanism of Sec. V-B:
// instead of computing the gradient of the whole window at update time, the
// gradient of each data subset is computed incrementally as it arrives and
// accumulated in the network's gradient buffers. At update time only the
// final subset's gradient remains to be computed, after which a single
// optimizer step applies the average.
type Precomputer struct {
	net     *nn.Network
	subsets int
	samples int
}

// NewPrecomputer wraps a network whose gradient buffers will accumulate the
// incoming subsets. The caller must not run other backward passes on the
// network between Start and Finalize.
func NewPrecomputer(net *nn.Network) *Precomputer {
	return &Precomputer{net: net}
}

// Start clears the gradient buffers for a new accumulation round.
func (p *Precomputer) Start() {
	p.net.ZeroGrad()
	p.subsets = 0
	p.samples = 0
}

// AddSubset folds one subset's gradient into the accumulators while the
// window is still waiting for data.
func (p *Precomputer) AddSubset(x [][]float64, y []int) error {
	if len(x) == 0 {
		return errors.New("window: empty precompute subset")
	}
	if _, err := p.net.AccumulateGradients(x, y); err != nil {
		return err
	}
	p.subsets++
	p.samples += len(x)
	return nil
}

// Subsets returns the number of subsets accumulated since Start.
func (p *Precomputer) Subsets() int { return p.subsets }

// Finalize rescales the accumulated gradients to the mean over subsets and
// applies a single optimizer step. It returns an error if no subset was
// added.
func (p *Precomputer) Finalize(opt *nn.SGD) error {
	if p.subsets == 0 {
		return errors.New("window: Finalize with no accumulated subsets")
	}
	// Each AccumulateGradients call already averaged within its subset;
	// average across subsets so the step size is independent of count.
	scale := 1 / float64(p.subsets)
	for _, param := range p.net.Params() {
		for i := range param.Grad {
			param.Grad[i] *= scale
		}
	}
	opt.Step(p.net.Params())
	p.subsets = 0
	p.samples = 0
	return nil
}
