package window

import (
	"math/rand"
	"testing"

	"freewayml/internal/linalg"
)

func BenchmarkASWPush(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultConfig()
	cfg.MaxBatches = 1 << 30 // never full: measure steady-state decay cost
	cfg.MaxItems = 1 << 30
	cfg.MinWeight = 0.3 // bounded population via eviction
	w, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	x := make([][]float64, 256)
	y := make([]int, 256)
	for i := range x {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := linalg.Vector{rng.NormFloat64(), rng.NormFloat64()}
		if _, err := w.Push(x, y, c); err != nil {
			b.Fatal(err)
		}
	}
}
