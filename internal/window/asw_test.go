package window

import (
	"math"
	"math/rand"
	"testing"

	"freewayml/internal/linalg"
	"freewayml/internal/nn"
)

func mkBatch(n int, label int, val float64) ([][]float64, []int) {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		x[i] = []float64{val, -val}
		y[i] = label
	}
	return x, y
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.MaxBatches = 0 },
		func(c *Config) { c.MaxItems = 0 },
		func(c *Config) { c.BaseDecay = 0 },
		func(c *Config) { c.BaseDecay = 1 },
		func(c *Config) { c.DisorderBoost = -1 },
		func(c *Config) { c.MinWeight = 1 },
		func(c *Config) { c.MinWeight = -0.1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config passed", i)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New with zero config should error")
	}
}

func TestPushValidation(t *testing.T) {
	w, _ := New(DefaultConfig())
	if _, err := w.Push(nil, nil, linalg.Vector{0}); err == nil {
		t.Error("empty batch should error")
	}
	x, y := mkBatch(4, 0, 1)
	if _, err := w.Push(x, y[:2], linalg.Vector{0}); err == nil {
		t.Error("label mismatch should error")
	}
	if _, err := w.Push(x, y, nil); err == nil {
		t.Error("nil centroid should error")
	}
}

func TestFullByBatches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxBatches = 3
	cfg.MaxItems = 1 << 20
	w, _ := New(cfg)
	for i := 0; i < 3; i++ {
		x, y := mkBatch(4, 0, float64(i))
		full, err := w.Push(x, y, linalg.Vector{float64(i), 0})
		if err != nil {
			t.Fatal(err)
		}
		if (i == 2) != full {
			t.Fatalf("push %d full=%v", i, full)
		}
	}
	if !w.Full() || w.Len() != 3 {
		t.Errorf("Len=%d Full=%v", w.Len(), w.Full())
	}
	w.Reset()
	if w.Len() != 0 || w.Items() != 0 || w.Full() {
		t.Error("Reset did not clear window")
	}
}

func TestFullByItems(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxBatches = 100
	cfg.MaxItems = 10
	w, _ := New(cfg)
	x, y := mkBatch(6, 0, 0)
	if full, _ := w.Push(x, y, linalg.Vector{0, 0}); full {
		t.Error("6 items should not fill a 10-item window")
	}
	if full, _ := w.Push(x, y, linalg.Vector{0, 0}); !full {
		t.Error("12 items should fill a 10-item window")
	}
}

func TestDecayWeightsMonotone(t *testing.T) {
	w, _ := New(DefaultConfig())
	x, y := mkBatch(4, 0, 0)
	if _, err := w.Push(x, y, linalg.Vector{0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Push(x, y, linalg.Vector{0.1, 0}); err != nil {
		t.Fatal(err)
	}
	entries := w.Entries()
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].Weight >= 1 {
		t.Errorf("old entry not decayed: %v", entries[0].Weight)
	}
	if entries[1].Weight != 1 {
		t.Errorf("new entry weight = %v, want 1", entries[1].Weight)
	}
}

func TestCloserBatchesDecayLess(t *testing.T) {
	// Two stored batches at distance 0.1 and 10 from the incoming batch: the
	// closer one must retain more weight.
	cfg := DefaultConfig()
	cfg.MaxBatches = 100
	w, _ := New(cfg)
	x, y := mkBatch(4, 0, 0)
	if _, err := w.Push(x, y, linalg.Vector{10, 0}); err != nil { // far
		t.Fatal(err)
	}
	if _, err := w.Push(x, y, linalg.Vector{0.1, 0}); err != nil { // near
		t.Fatal(err)
	}
	if _, err := w.Push(x, y, linalg.Vector{0, 0}); err != nil { // incoming
		t.Fatal(err)
	}
	entries := w.Entries()
	var farW, nearW float64
	for _, e := range entries {
		switch e.Centroid[0] {
		case 10:
			farW = e.Weight
		case 0.1:
			nearW = e.Weight
		}
	}
	if farW == 0 || nearW == 0 {
		t.Fatalf("missing entries: %+v", entries)
	}
	if nearW <= farW {
		t.Errorf("near weight %v should exceed far weight %v", nearW, farW)
	}
}

func TestDisorderLowForDirectionalDrift(t *testing.T) {
	// Batches marching steadily in one direction: the most recent stored
	// batch is always closest to the incoming one, so time order and
	// distance order agree → low disorder.
	cfg := DefaultConfig()
	cfg.MaxBatches = 100
	cfg.MinWeight = 0 // keep everything so the ranking is over all batches
	w, _ := New(cfg)
	x, y := mkBatch(2, 0, 0)
	for i := 0; i < 8; i++ {
		if _, err := w.Push(x, y, linalg.Vector{float64(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	if d := w.Disorder(); d > 0.2 {
		t.Errorf("directional drift disorder = %v, want near 0", d)
	}
}

func TestDisorderHighForLocalizedStream(t *testing.T) {
	// Batches bouncing around randomly inside a region: the distance ranking
	// bears no relation to time order → high disorder (Pattern A2, Fig. 7).
	cfg := DefaultConfig()
	cfg.MaxBatches = 100
	cfg.MinWeight = 0
	w, _ := New(cfg)
	x, y := mkBatch(2, 0, 0)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 12; i++ {
		c := linalg.Vector{rng.Float64() * 100, rng.Float64() * 100}
		if _, err := w.Push(x, y, c); err != nil {
			t.Fatal(err)
		}
	}
	if d := w.Disorder(); d < 0.3 {
		t.Errorf("localized stream disorder = %v, want high", d)
	}
}

func TestEvictionBelowMinWeight(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxBatches = 1000
	cfg.MaxItems = 1 << 20
	cfg.BaseDecay = 0.5 // aggressive decay
	cfg.MinWeight = 0.2
	w, _ := New(cfg)
	x, y := mkBatch(4, 0, 0)
	for i := 0; i < 20; i++ {
		if _, err := w.Push(x, y, linalg.Vector{float64(i * 10), 0}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() >= 20 {
		t.Errorf("no eviction happened: Len=%d", w.Len())
	}
	for _, e := range w.Entries() {
		if e.Weight < cfg.MinWeight {
			t.Errorf("entry below MinWeight survived: %v", e.Weight)
		}
	}
	// Items counter must match surviving entries.
	total := 0
	for _, e := range w.Entries() {
		total += len(e.X)
	}
	if total != w.Items() {
		t.Errorf("Items()=%d, actual %d", w.Items(), total)
	}
}

func TestTrainingSetWeighting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxBatches = 100
	w, _ := New(cfg)
	x0, y0 := mkBatch(10, 0, 0)
	x1, y1 := mkBatch(10, 1, 1)
	if _, err := w.Push(x0, y0, linalg.Vector{0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Push(x1, y1, linalg.Vector{5, 0}); err != nil {
		t.Fatal(err)
	}
	xs, ys := w.TrainingSet()
	if len(xs) != len(ys) {
		t.Fatalf("xs/ys mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) == 0 || len(xs) > 20 {
		t.Fatalf("training set size %d", len(xs))
	}
	// The newer batch has weight 1 → contributes all 10; the older is
	// decayed → contributes fewer or equal.
	count0, count1 := 0, 0
	for _, yv := range ys {
		if yv == 0 {
			count0++
		} else {
			count1++
		}
	}
	if count1 != 10 {
		t.Errorf("new batch contributed %d, want 10", count1)
	}
	if count0 > 10 {
		t.Errorf("old batch contributed %d > 10", count0)
	}
}

func TestTrainingSetEmptyWindow(t *testing.T) {
	w, _ := New(DefaultConfig())
	xs, ys := w.TrainingSet()
	if len(xs) != 0 || len(ys) != 0 {
		t.Error("empty window should produce empty training set")
	}
	if w.Distribution() != nil {
		t.Error("empty window distribution should be nil")
	}
}

func TestDistributionWeightedCentroid(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxBatches = 100
	w, _ := New(cfg)
	x, y := mkBatch(4, 0, 0)
	if _, err := w.Push(x, y, linalg.Vector{0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Push(x, y, linalg.Vector{10, 0}); err != nil {
		t.Fatal(err)
	}
	d := w.Distribution()
	if d == nil {
		t.Fatal("nil distribution")
	}
	// Newest has weight 1, older < 1, so the mean must lean toward 10.
	if d[0] <= 5 || d[0] >= 10 {
		t.Errorf("distribution[0] = %v, want in (5, 10)", d[0])
	}
}

func TestPrecomputerMatchesDirectTraining(t *testing.T) {
	// Accumulating two half-batches then Finalize must equal one TrainBatch
	// on the concatenation (both average per-subset then across subsets of
	// equal size == overall mean gradient).
	rng := rand.New(rand.NewSource(1))
	mkNet := func() *nn.Network {
		r := rand.New(rand.NewSource(7))
		n, err := nn.NewNetwork(3, 2, nn.NewDense(3, 2, r))
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	netA := mkNet()
	netB := mkNet()

	x := make([][]float64, 8)
	y := make([]int, 8)
	for i := range x {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y[i] = rng.Intn(2)
	}

	// A: direct train on full batch.
	optA := nn.NewSGD(0.1, 0, 0)
	if _, err := netA.TrainBatch(x, y, optA); err != nil {
		t.Fatal(err)
	}

	// B: precompute over two equal subsets.
	p := NewPrecomputer(netB)
	p.Start()
	if err := p.AddSubset(x[:4], y[:4]); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSubset(x[4:], y[4:]); err != nil {
		t.Fatal(err)
	}
	if p.Subsets() != 2 {
		t.Fatalf("Subsets = %d", p.Subsets())
	}
	optB := nn.NewSGD(0.1, 0, 0)
	if err := p.Finalize(optB); err != nil {
		t.Fatal(err)
	}

	pa, pb := netA.Params(), netB.Params()
	for i := range pa {
		for j := range pa[i].W {
			if math.Abs(pa[i].W[j]-pb[i].W[j]) > 1e-9 {
				t.Fatalf("param %d[%d]: %v vs %v", i, j, pa[i].W[j], pb[i].W[j])
			}
		}
	}
}

func TestPrecomputerErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net, _ := nn.NewNetwork(2, 2, nn.NewDense(2, 2, rng))
	p := NewPrecomputer(net)
	p.Start()
	if err := p.AddSubset(nil, nil); err == nil {
		t.Error("empty subset should error")
	}
	if err := p.Finalize(nn.NewSGD(0.1, 0, 0)); err == nil {
		t.Error("Finalize with no subsets should error")
	}
}
