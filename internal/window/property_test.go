package window

import (
	"math/rand"
	"testing"
	"testing/quick"

	"freewayml/internal/linalg"
)

// Property: after any sequence of pushes, every surviving weight is in
// (0, 1], Items() equals the sum of entry lengths, and entries remain in
// arrival order.
func TestWindowInvariantsProperty(t *testing.T) {
	f := func(seed int64, nPushes uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.MaxBatches = 1 << 30
		cfg.MaxItems = 1 << 30
		w, err := New(cfg)
		if err != nil {
			return false
		}
		pushes := int(nPushes%40) + 1
		for i := 0; i < pushes; i++ {
			n := rng.Intn(8) + 1
			x := make([][]float64, n)
			y := make([]int, n)
			for j := range x {
				x[j] = []float64{rng.NormFloat64()}
			}
			c := linalg.Vector{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
			if _, err := w.Push(x, y, c); err != nil {
				return false
			}
		}
		items := 0
		prevSeq := -1
		for _, e := range w.Entries() {
			if e.Weight <= 0 || e.Weight > 1 {
				return false
			}
			if e.Seq <= prevSeq {
				return false
			}
			prevSeq = e.Seq
			items += len(e.X)
		}
		if items != w.Items() {
			return false
		}
		d := w.Disorder()
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: TrainingSet never returns more samples than stored and keeps
// X/Y aligned.
func TestTrainingSetBoundedProperty(t *testing.T) {
	f := func(seed int64, nPushes uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w, err := New(DefaultConfig())
		if err != nil {
			return false
		}
		for i := 0; i < int(nPushes%10)+1; i++ {
			n := rng.Intn(16) + 1
			x := make([][]float64, n)
			y := make([]int, n)
			for j := range x {
				x[j] = []float64{float64(i)}
				y[j] = i
			}
			if _, err := w.Push(x, y, linalg.Vector{float64(i), 0}); err != nil {
				return false
			}
		}
		xs, ys := w.TrainingSet()
		if len(xs) != len(ys) {
			return false
		}
		return len(xs) <= w.Items()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
