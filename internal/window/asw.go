// Package window implements FreewayML's adaptive streaming window (ASW,
// paper Sec. IV-B and Algorithm 1): the training-data structure behind the
// long-time-granularity model. Each stored batch carries a decay weight;
// when a new batch arrives, existing batches are decayed according to their
// shift-distance rank (closer distributions decay less) modulated by the
// window's disorder (Eq. 11), so the window tracks the live distribution at
// minimal cost. The package also provides the pre-computing gradient
// mechanism of Sec. V-B.
package window

import (
	"errors"
	"math"
	"sort"

	"freewayml/internal/linalg"
	"freewayml/internal/stats"
)

// Config parametrizes an ASW.
type Config struct {
	// MaxBatches triggers a long-model update when the window holds this
	// many batches.
	MaxBatches int
	// MaxItems triggers an update when the window holds this many samples.
	MaxItems int
	// BaseDecay is the per-push weight multiplier for the closest batch at
	// zero disorder; farther batches and higher disorder decay faster.
	// Must be in (0, 1).
	BaseDecay float64
	// DisorderBoost scales how strongly normalized disorder accelerates
	// decay (decay exponent is (1+rankFrac)·(1+DisorderBoost·disorder)).
	DisorderBoost float64
	// MinWeight evicts batches whose weight decays below it.
	MinWeight float64
}

// DefaultConfig returns the window parameters used in the evaluation.
func DefaultConfig() Config {
	return Config{MaxBatches: 8, MaxItems: 16384, BaseDecay: 0.95, DisorderBoost: 1.0, MinWeight: 0.05}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.MaxBatches < 1:
		return errors.New("window: MaxBatches must be >= 1")
	case c.MaxItems < 1:
		return errors.New("window: MaxItems must be >= 1")
	case c.BaseDecay <= 0 || c.BaseDecay >= 1:
		return errors.New("window: BaseDecay must be in (0, 1)")
	case c.DisorderBoost < 0:
		return errors.New("window: DisorderBoost must be >= 0")
	case c.MinWeight < 0 || c.MinWeight >= 1:
		return errors.New("window: MinWeight must be in [0, 1)")
	}
	return nil
}

// Entry is one batch held by the window.
type Entry struct {
	X        [][]float64
	Y        []int
	Centroid linalg.Vector // the batch's distribution representation (ȳ)
	Weight   float64       // decay weight in (0, 1]
	Seq      int           // arrival sequence number
}

// ASW is the adaptive streaming window. Not safe for concurrent use.
type ASW struct {
	cfg        Config
	entries    []Entry
	seq        int
	items      int
	disorder   float64 // normalized disorder from the last Push
	decayBoost float64 // rate-aware multiplier on the decay exponent
	evictions  int     // cumulative batches evicted by weight decay
}

// New returns an empty window.
func New(cfg Config) (*ASW, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &ASW{cfg: cfg, decayBoost: 1}, nil
}

// SetDecayBoost applies the rate-aware adjuster's output (paper Sec. V-B):
// values above 1 accelerate decay so updates become less frequent under
// high-rate streams. Values below 1 are clamped to 1.
func (w *ASW) SetDecayBoost(boost float64) {
	if boost < 1 {
		boost = 1
	}
	w.decayBoost = boost
}

// Len returns the number of stored batches.
func (w *ASW) Len() int { return len(w.entries) }

// Items returns the total number of stored samples.
func (w *ASW) Items() int { return w.items }

// Disorder returns the normalized disorder (Eq. 11, scaled to [0, 1])
// computed during the most recent Push: the degree to which the
// shift-distance ranking of the stored batches disagrees with their time
// order. Low disorder indicates a directional drift (Pattern A1); high
// disorder indicates localized fluctuation (Pattern A2).
func (w *ASW) Disorder() float64 { return w.disorder }

// Evictions returns the cumulative count of batches evicted because their
// decay weight fell below MinWeight (not reset by Reset — it is a lifetime
// counter for observability).
func (w *ASW) Evictions() int { return w.evictions }

// Full reports whether the window has reached MaxBatches or MaxItems and a
// long-model update should run (Algorithm 1, line 3).
func (w *ASW) Full() bool {
	return len(w.entries) >= w.cfg.MaxBatches || w.items >= w.cfg.MaxItems
}

// Push ingests a batch with its distribution centroid, decaying existing
// entries per Algorithm 1: rank the stored batches by shift distance to the
// new batch, compute the ranking's disorder, then decay each batch by a
// rate that grows with its distance rank and with the disorder. Returns
// whether the window is full after the push.
func (w *ASW) Push(x [][]float64, y []int, centroid linalg.Vector) (bool, error) {
	if len(x) == 0 || len(x) != len(y) {
		return false, errors.New("window: batch must be non-empty with matching labels")
	}
	if centroid == nil {
		return false, errors.New("window: nil centroid")
	}

	if n := len(w.entries); n > 0 {
		// Rank stored batches by distance to the incoming batch.
		type ranked struct {
			idx  int
			dist float64
		}
		rs := make([]ranked, n)
		for i, e := range w.entries {
			rs[i] = ranked{idx: i, dist: centroid.Distance(e.Centroid)}
		}
		sort.Slice(rs, func(a, b int) bool { return rs[a].dist < rs[b].dist })

		// rankOf[i] is entry i's distance rank (0 = closest).
		rankOf := make([]int, n)
		for r, v := range rs {
			rankOf[v.idx] = r
		}

		// Disorder: compare the distance ranking against recency. τ (Eq. 11)
		// reads the ranks newest-first: under a directional drift the most
		// recent batch is the closest (rank 0), the next most recent rank 1,
		// and so on — an ascending sequence with zero inversions — while a
		// localized stream scrambles the ranks (Fig. 7).
		tau := make([]int, n)
		for i := 0; i < n; i++ {
			tau[i] = rankOf[n-1-i]
		}
		w.disorder = stats.NormalizedDisorder(tau)

		// Decay every entry: closer (low rank) → less decay; higher
		// disorder → more decay (localized data, update less urgent).
		kept := w.entries[:0]
		items := 0
		for i := range w.entries {
			e := w.entries[i]
			rankFrac := float64(rankOf[i]) / float64(n)
			exponent := (1 + rankFrac) * (1 + w.cfg.DisorderBoost*w.disorder) * w.decayBoost
			e.Weight *= math.Pow(w.cfg.BaseDecay, exponent)
			if e.Weight < w.cfg.MinWeight {
				w.evictions++
				continue // evicted
			}
			kept = append(kept, e)
			items += len(e.X)
		}
		w.entries = kept
		w.items = items
	} else {
		w.disorder = 0
	}

	w.entries = append(w.entries, Entry{X: x, Y: y, Centroid: centroid.Clone(), Weight: 1, Seq: w.seq})
	w.seq++
	w.items += len(x)
	return w.Full(), nil
}

// Entries returns the stored batches, oldest first. The slice is shared;
// callers must not mutate it.
func (w *ASW) Entries() []Entry { return w.entries }

// TrainingSet flattens the window into one weighted training set: each batch
// contributes its first ceil(weight·len) samples, so heavily decayed batches
// contribute proportionally less signal. Returns empty slices for an empty
// window.
func (w *ASW) TrainingSet() ([][]float64, []int) {
	var xs [][]float64
	var ys []int
	for _, e := range w.entries {
		take := int(math.Ceil(e.Weight * float64(len(e.X))))
		if take > len(e.X) {
			take = len(e.X)
		}
		xs = append(xs, e.X[:take]...)
		ys = append(ys, e.Y[:take]...)
	}
	return xs, ys
}

// Distribution returns the weight-averaged centroid of the window — the d_i
// stored with a preserved long-model snapshot. Returns nil for an empty
// window.
func (w *ASW) Distribution() linalg.Vector {
	if len(w.entries) == 0 {
		return nil
	}
	dim := len(w.entries[0].Centroid)
	sum := linalg.NewVector(dim)
	var total float64
	for _, e := range w.entries {
		sum.AddInPlace(e.Centroid.Scale(e.Weight))
		total += e.Weight
	}
	if total == 0 {
		return nil
	}
	sum.ScaleInPlace(1 / total)
	return sum
}

// Reset empties the window after a long-model update, preserving the
// sequence counter.
func (w *ASW) Reset() {
	w.entries = nil
	w.items = 0
	w.disorder = 0
}
