package shift

import (
	"fmt"
	"io"

	"freewayml/internal/linalg"
)

// GraphPoint is one node of the shift graph: a batch's 2-D (or d-D) PCA
// projection plus the measurements attached to it. Consecutive points are
// connected chronologically; the edge length is the shift distance (paper
// Fig. 2).
type GraphPoint struct {
	Batch    int
	Y        linalg.Vector
	Distance float64 // edge length from the previous point (0 for the first)
	Severity float64
	Pattern  Pattern
	Accuracy float64 // optional: per-batch real-time accuracy, for Fig. 2d
}

// Graph accumulates the chronological trajectory of batch projections. It is
// the data behind Figure 2 of the paper: plotting Y[0] vs Y[1] and joining
// the points in order reproduces the shift graph, while the Accuracy column
// reproduces the correlated accuracy curve.
type Graph struct {
	points []GraphPoint
}

// Add appends a point built from a detector observation and the real-time
// accuracy measured on the same batch (use NaN when no accuracy is
// available, e.g. for unlabeled batches).
func (g *Graph) Add(obs Observation, accuracy float64) {
	if obs.YBar == nil {
		return // warm-up batches have no projection
	}
	g.points = append(g.points, GraphPoint{
		Batch:    obs.Batch,
		Y:        obs.YBar.Clone(),
		Distance: obs.Distance,
		Severity: obs.Severity,
		Pattern:  obs.Pattern,
		Accuracy: accuracy,
	})
}

// Points returns the accumulated trajectory in chronological order.
func (g *Graph) Points() []GraphPoint { return g.points }

// Len returns the number of recorded points.
func (g *Graph) Len() int { return len(g.points) }

// TotalPathLength returns the sum of all edge lengths — a scalar summary of
// how much the distribution wandered.
func (g *Graph) TotalPathLength() float64 {
	var s float64
	for _, p := range g.points {
		s += p.Distance
	}
	return s
}

// TransitionGraph counts pattern-to-pattern transitions across a stream's
// batches — the groundwork for a probabilistic concept repository: the
// normalized outgoing edge counts of a node are the empirical transition
// probabilities between shift regimes. Not safe for concurrent use; the
// session layer records under its own lock.
type TransitionGraph struct {
	counts  map[Pattern]map[Pattern]int
	last    Pattern
	started bool
	total   int
}

// Record appends one batch's pattern to the trajectory, counting the edge
// from the previous batch's pattern. The first recorded batch only sets the
// starting node.
func (g *TransitionGraph) Record(p Pattern) {
	g.total++
	if g.started {
		if g.counts == nil {
			g.counts = make(map[Pattern]map[Pattern]int)
		}
		row := g.counts[g.last]
		if row == nil {
			row = make(map[Pattern]int)
			g.counts[g.last] = row
		}
		row[p]++
	}
	g.last = p
	g.started = true
}

// Transition is one directed edge of the pattern-transition graph.
type Transition struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Count int    `json:"count"`
}

// TransitionSnapshot is a point-in-time copy of the transition graph,
// ordered deterministically (edges sorted by from, then to, in pattern
// declaration order).
type TransitionSnapshot struct {
	Nodes   []string     `json:"nodes"`
	Edges   []Transition `json:"edges"`
	Last    string       `json:"last,omitempty"`
	Batches int          `json:"batches"`
}

// patternOrder fixes the deterministic node/edge ordering.
var patternOrder = []Pattern{PatternWarmup, PatternA, PatternA1, PatternA2, PatternB, PatternC}

// Snapshot copies the graph into a serializable form.
func (g *TransitionGraph) Snapshot() TransitionSnapshot {
	snap := TransitionSnapshot{Batches: g.total}
	if g.started {
		snap.Last = g.last.Label()
	}
	seen := make(map[Pattern]bool)
	note := func(p Pattern) {
		if !seen[p] {
			seen[p] = true
		}
	}
	if g.started {
		note(g.last)
	}
	for from, row := range g.counts {
		note(from)
		for to := range row {
			note(to)
		}
	}
	for _, p := range patternOrder {
		if seen[p] {
			snap.Nodes = append(snap.Nodes, p.Label())
		}
	}
	for _, from := range patternOrder {
		row := g.counts[from]
		if row == nil {
			continue
		}
		for _, to := range patternOrder {
			if n := row[to]; n > 0 {
				snap.Edges = append(snap.Edges, Transition{From: from.Label(), To: to.Label(), Count: n})
			}
		}
	}
	return snap
}

// WriteCSV emits the graph as CSV with one row per batch:
// batch,y0,y1,...,distance,severity,pattern,accuracy. It is what
// cmd/shiftgraph prints so the Fig. 2 plots can be regenerated with any
// plotting tool.
func (g *Graph) WriteCSV(w io.Writer) error {
	if len(g.points) == 0 {
		_, err := fmt.Fprintln(w, "batch,distance,severity,pattern,accuracy")
		return err
	}
	dim := len(g.points[0].Y)
	header := "batch"
	for j := 0; j < dim; j++ {
		header += fmt.Sprintf(",y%d", j)
	}
	header += ",distance,severity,pattern,accuracy"
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, p := range g.points {
		row := fmt.Sprintf("%d", p.Batch)
		for j := 0; j < dim; j++ {
			row += fmt.Sprintf(",%.6f", p.Y[j])
		}
		row += fmt.Sprintf(",%.6f,%.4f,%s,%.4f", p.Distance, p.Severity, p.Pattern, p.Accuracy)
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}
