// Package shift implements FreewayML's data-pattern phase (paper Sec. III):
// PCA-projected batch centroids, the shift distance between consecutive
// batches (Eq. 6-7), weighted shift-severity scoring (Eq. 8-10), the
// nearest-history distance d_h, and the resulting classification of every
// batch into a slight (A), sudden (B), or reoccurring (C) shift pattern.
// It also builds the shift graph of Figure 2.
package shift

import "fmt"

// Pattern identifies a data distribution shift pattern from the paper.
type Pattern int

const (
	// PatternWarmup marks batches consumed before the PCA model and the
	// distance history are ready; no classification is made.
	PatternWarmup Pattern = iota
	// PatternA is a slight shift (M < α). Sub-classified into A1/A2 by the
	// adaptive streaming window's disorder (see SubClassifyA).
	PatternA
	// PatternA1 is a directional slight shift (low disorder).
	PatternA1
	// PatternA2 is a localized slight shift (high disorder).
	PatternA2
	// PatternB is a sudden shift (M > α) toward a never-seen distribution.
	PatternB
	// PatternC is a reoccurring shift (M > α and d_h < d_t): the stream
	// moved back toward a previously observed distribution.
	PatternC
)

// String returns the paper's name for the pattern.
func (p Pattern) String() string {
	switch p {
	case PatternWarmup:
		return "warmup"
	case PatternA:
		return "A(slight)"
	case PatternA1:
		return "A1(directional)"
	case PatternA2:
		return "A2(localized)"
	case PatternB:
		return "B(sudden)"
	case PatternC:
		return "C(reoccurring)"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Label returns the short paper name ("A1", "B", …) without the
// parenthesized gloss String() adds — the form used in metric labels and
// the transition-graph JSON.
func (p Pattern) Label() string {
	switch p {
	case PatternWarmup:
		return "warmup"
	case PatternA:
		return "A"
	case PatternA1:
		return "A1"
	case PatternA2:
		return "A2"
	case PatternB:
		return "B"
	case PatternC:
		return "C"
	default:
		return p.String()
	}
}

// IsSlight reports whether p is any of the slight-shift patterns A, A1, A2.
func (p Pattern) IsSlight() bool { return p == PatternA || p == PatternA1 || p == PatternA2 }

// IsSevere reports whether p is a severe shift (B or C).
func (p Pattern) IsSevere() bool { return p == PatternB || p == PatternC }

// SubClassifyA refines a slight shift into A1 (directional) or A2
// (localized) given the normalized disorder of the adaptive streaming
// window: low disorder means the window's distance ranking follows time —
// an orderly directional drift; high disorder means localized fluctuation
// (paper Fig. 7). threshold is the normalized-disorder split point.
func SubClassifyA(disorder, threshold float64) Pattern {
	if disorder < threshold {
		return PatternA1
	}
	return PatternA2
}
