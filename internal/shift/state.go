package shift

import (
	"errors"

	"freewayml/internal/linalg"
	"freewayml/internal/pca"
	"freewayml/internal/stats"
)

// State is the serializable form of a Detector, capturing everything needed
// to resume pattern classification mid-stream: the PCA model (whose space
// anchors every stored centroid and knowledge distribution), the previous
// batch projection, the recent shift distances, and the centroid history.
type State struct {
	Ready     bool
	PCA       pca.State
	Prev      linalg.Vector
	Distances []float64 // oldest first
	Centroids []CentroidState
	Batch     int
}

// CentroidState is one retained batch centroid.
type CentroidState struct {
	Y     linalg.Vector
	Batch int
}

// State exports the detector. A detector still in warm-up exports
// Ready=false and resumes its warm-up from scratch (the accumulated warm-up
// points are intentionally not serialized; they can be large and the next
// deployment re-warms within one warm-up period).
func (d *Detector) State() State {
	s := State{Batch: d.batch}
	if d.model == nil {
		return s
	}
	s.Ready = true
	s.PCA = d.model.State()
	if d.prev != nil {
		s.Prev = d.prev.Clone()
	}
	s.Distances = d.distances.OldestFirst()
	s.Centroids = make([]CentroidState, len(d.centroids))
	for i, c := range d.centroids {
		s.Centroids[i] = CentroidState{Y: c.y.Clone(), Batch: c.batch}
	}
	return s
}

// RestoreState loads a previously exported state into a detector built with
// a compatible config.
func (d *Detector) RestoreState(s State) error {
	d.batch = s.Batch
	if !s.Ready {
		d.model = nil
		d.prev = nil
		d.warmup = nil
		d.distances.Reset()
		d.centroids = nil
		return nil
	}
	m, err := pca.FromState(s.PCA)
	if err != nil {
		return err
	}
	d.model = m
	d.warmup = nil
	if s.Prev != nil {
		d.prev = s.Prev.Clone()
	} else {
		d.prev = nil
	}
	if len(s.Distances) > d.distances.Cap() {
		return errors.New("shift: state distance history exceeds configured HistoryK")
	}
	d.distances = stats.NewSlidingWindow(d.distances.Cap())
	for _, dist := range s.Distances {
		d.distances.Push(dist)
	}
	d.centroids = make([]centroid, len(s.Centroids))
	for i, c := range s.Centroids {
		d.centroids[i] = centroid{y: c.Y.Clone(), batch: c.Batch}
	}
	return nil
}
