package shift

import (
	"math/rand"
	"testing"

	"freewayml/internal/linalg"
)

func TestObservationCarriesHistoryMean(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	det, _ := NewDetector(smallConfig())
	driveWarmup(t, det, rng, linalg.Vector{0, 0, 0}, 0.3)
	obs, err := det.Observe(cloud(rng, 64, linalg.Vector{0, 0, 0}, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if obs.HistoryMean <= 0 {
		t.Errorf("HistoryMean = %v, want > 0 after warm history", obs.HistoryMean)
	}
	// A jump's distance must dwarf the history mean.
	jump, err := det.Observe(cloud(rng, 64, linalg.Vector{50, 50, 0}, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if jump.Distance < 5*jump.HistoryMean {
		t.Errorf("jump distance %v not >> history mean %v", jump.Distance, jump.HistoryMean)
	}
}
