package shift

import (
	"math/rand"
	"testing"

	"freewayml/internal/linalg"
)

func BenchmarkDetectorObserve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultConfig()
	cfg.WarmupPoints = 256
	det, err := NewDetector(cfg)
	if err != nil {
		b.Fatal(err)
	}
	batches := make([][]linalg.Vector, 8)
	for i := range batches {
		batches[i] = cloud(rng, 256, linalg.Vector{float64(i), 0, 0, 0, 0, 0, 0, 0}, 0.5)
	}
	// Warm up past the PCA fit.
	for i := 0; i < 4; i++ {
		if _, err := det.Observe(batches[i%len(batches)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Observe(batches[i%len(batches)]); err != nil {
			b.Fatal(err)
		}
	}
}
