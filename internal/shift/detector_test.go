package shift

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"freewayml/internal/linalg"
)

// cloud returns n points distributed N(center, spread²·I).
func cloud(rng *rand.Rand, n int, center linalg.Vector, spread float64) []linalg.Vector {
	pts := make([]linalg.Vector, n)
	for i := range pts {
		pts[i] = linalg.NewVector(len(center))
		for j := range center {
			pts[i][j] = center[j] + rng.NormFloat64()*spread
		}
	}
	return pts
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.WarmupPoints = 64
	cfg.HistoryK = 10
	cfg.MinSeverityHistory = 4
	cfg.RecentExclusion = 3
	return cfg
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.WarmupPoints = 0 },
		func(c *Config) { c.ProjectionDim = 0 },
		func(c *Config) { c.HistoryK = 0 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.WeightDecay = 0 },
		func(c *Config) { c.WeightDecay = 1.5 },
		func(c *Config) { c.CentroidHistory = 0 },
		func(c *Config) { c.RecentExclusion = -1 },
		func(c *Config) { c.MinSeverityHistory = 0 },
		func(c *Config) { c.MinSevereRatio = -1 },
		func(c *Config) { c.ReoccurRatio = 0 },
		func(c *Config) { c.ReoccurRatio = 1.5 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config passed Validate", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if _, err := NewDetector(Config{}); err == nil {
		t.Error("NewDetector with zero config should error")
	}
}

func TestWarmupPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	det, err := NewDetector(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 64 warm-up points at 32/batch: first batch stays in warm-up.
	obs, err := det.Observe(cloud(rng, 32, linalg.Vector{0, 0, 0}, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if obs.Pattern != PatternWarmup || det.Ready() {
		t.Fatalf("expected warmup, got %v ready=%v", obs.Pattern, det.Ready())
	}
	obs, err = det.Observe(cloud(rng, 32, linalg.Vector{0, 0, 0}, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if !det.Ready() {
		t.Fatal("detector should be ready after warm-up points accumulated")
	}
	if obs.Pattern != PatternA {
		t.Fatalf("first post-warmup batch = %v, want A", obs.Pattern)
	}
	if det.PCA() == nil {
		t.Error("PCA() nil after warm-up")
	}
}

func TestEmptyBatchErrors(t *testing.T) {
	det, _ := NewDetector(smallConfig())
	if _, err := det.Observe(nil); err == nil {
		t.Error("empty batch should error")
	}
}

// driveWarmup pushes stationary batches until the detector is ready and has
// enough distance history for severity scoring.
func driveWarmup(t *testing.T, det *Detector, rng *rand.Rand, center linalg.Vector, spread float64) {
	t.Helper()
	for i := 0; i < 20; i++ {
		if _, err := det.Observe(cloud(rng, 64, center, spread)); err != nil {
			t.Fatal(err)
		}
	}
	if !det.Ready() {
		t.Fatal("detector not ready after drive")
	}
}

func TestStationaryStreamClassifiesSlight(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	det, _ := NewDetector(smallConfig())
	center := linalg.Vector{1, 2, 3}
	driveWarmup(t, det, rng, center, 0.5)
	severe := 0
	for i := 0; i < 30; i++ {
		obs, err := det.Observe(cloud(rng, 64, center, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		if obs.Pattern.IsSevere() {
			severe++
		}
	}
	// The z-test has an intrinsic small false-positive rate; a stationary
	// stream must classify overwhelmingly as slight.
	if severe > 2 {
		t.Fatalf("stationary stream produced %d severe classifications out of 30", severe)
	}
}

func TestSuddenShiftClassifiesB(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	det, _ := NewDetector(smallConfig())
	driveWarmup(t, det, rng, linalg.Vector{0, 0, 0}, 0.3)
	// Jump far away from anything seen before.
	obs, err := det.Observe(cloud(rng, 64, linalg.Vector{50, -40, 30}, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if obs.Pattern != PatternB {
		t.Fatalf("sudden jump classified %v (M=%.2f, dh=%.2f, dt=%.2f)",
			obs.Pattern, obs.Severity, obs.NearestHistory, obs.Distance)
	}
	if obs.Severity <= det.cfg.Alpha {
		t.Errorf("severity %.2f not above alpha", obs.Severity)
	}
}

func TestReoccurringShiftClassifiesC(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := smallConfig()
	det, _ := NewDetector(cfg)
	home := linalg.Vector{0, 0, 0}
	away := linalg.Vector{40, 40, -40}
	driveWarmup(t, det, rng, home, 0.3)
	// Leave home: one sudden shift, then settle at `away` long enough that
	// `home` is outside the recent-exclusion window.
	for i := 0; i < cfg.RecentExclusion+5; i++ {
		if _, err := det.Observe(cloud(rng, 64, away, 0.3)); err != nil {
			t.Fatal(err)
		}
	}
	// Return home: severe shift toward a previously seen distribution.
	obs, err := det.Observe(cloud(rng, 64, home, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if obs.Pattern != PatternC {
		t.Fatalf("return shift classified %v (M=%.2f, dh=%.2f, dt=%.2f)",
			obs.Pattern, obs.Severity, obs.NearestHistory, obs.Distance)
	}
	if obs.NearestHistoryIndex < 0 {
		t.Error("PatternC must carry the matched history index")
	}
	if obs.NearestHistory >= obs.Distance {
		t.Errorf("d_h=%.3f should be < d_t=%.3f", obs.NearestHistory, obs.Distance)
	}
}

func TestDirectionalDriftStaysSlight(t *testing.T) {
	// A slow, steady drift produces consistent small distances: the weighted
	// z-score of each new distance stays near 0.
	rng := rand.New(rand.NewSource(5))
	det, _ := NewDetector(smallConfig())
	pos := linalg.Vector{0, 0, 0}
	driveWarmup(t, det, rng, pos, 0.3)
	severe := 0
	for i := 0; i < 40; i++ {
		pos = pos.Add(linalg.Vector{0.05, 0.05, 0})
		obs, err := det.Observe(cloud(rng, 64, pos, 0.3))
		if err != nil {
			t.Fatal(err)
		}
		if obs.Pattern.IsSevere() {
			severe++
		}
	}
	// The onset of drift can legitimately spike severity for a few batches;
	// the bulk of a steady drift must classify as slight.
	if severe > 8 {
		t.Errorf("directional drift produced %d severe classifications out of 40", severe)
	}
}

func TestHistoryDistancesTracked(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	det, _ := NewDetector(smallConfig())
	driveWarmup(t, det, rng, linalg.Vector{0, 0, 0}, 0.3)
	h := det.HistoryDistances()
	if len(h) == 0 {
		t.Fatal("no history recorded")
	}
	for _, d := range h {
		if d < 0 || math.IsNaN(d) {
			t.Fatalf("invalid distance %v", d)
		}
	}
}

func TestSubClassifyA(t *testing.T) {
	if p := SubClassifyA(0.1, 0.5); p != PatternA1 {
		t.Errorf("low disorder = %v, want A1", p)
	}
	if p := SubClassifyA(0.9, 0.5); p != PatternA2 {
		t.Errorf("high disorder = %v, want A2", p)
	}
}

func TestPatternStringAndPredicates(t *testing.T) {
	cases := map[Pattern]string{
		PatternWarmup: "warmup",
		PatternA:      "A(slight)",
		PatternA1:     "A1(directional)",
		PatternA2:     "A2(localized)",
		PatternB:      "B(sudden)",
		PatternC:      "C(reoccurring)",
		Pattern(99):   "Pattern(99)",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
	if !PatternA1.IsSlight() || PatternB.IsSlight() {
		t.Error("IsSlight misclassifies")
	}
	if !PatternC.IsSevere() || PatternA.IsSevere() {
		t.Error("IsSevere misclassifies")
	}
}

func TestGraphAccumulationAndCSV(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	det, _ := NewDetector(smallConfig())
	var g Graph
	// Warm-up observations carry no projection and must be skipped.
	obs, _ := det.Observe(cloud(rng, 32, linalg.Vector{0, 0, 0}, 0.3))
	g.Add(obs, 0.9)
	if g.Len() != 0 {
		t.Fatal("warm-up point should not be recorded")
	}
	for i := 0; i < 10; i++ {
		obs, err := det.Observe(cloud(rng, 64, linalg.Vector{0, 0, 0}, 0.3))
		if err != nil {
			t.Fatal(err)
		}
		g.Add(obs, 0.9)
	}
	if g.Len() == 0 {
		t.Fatal("no points recorded")
	}
	if g.TotalPathLength() < 0 {
		t.Error("negative path length")
	}
	var sb strings.Builder
	if err := g.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	wantHeader := "batch"
	for j := 0; j < det.PCA().OutputDim(); j++ {
		wantHeader += fmt.Sprintf(",y%d", j)
	}
	wantHeader += ",distance,severity,pattern,accuracy"
	if !strings.HasPrefix(out, wantHeader) {
		t.Errorf("unexpected header: %q", strings.SplitN(out, "\n", 2)[0])
	}
	if lines := strings.Count(out, "\n"); lines != g.Len()+1 {
		t.Errorf("CSV lines = %d, want %d", lines, g.Len()+1)
	}
}

func TestGraphEmptyCSV(t *testing.T) {
	var g Graph
	var sb strings.Builder
	if err := g.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "batch,") {
		t.Error("empty CSV missing header")
	}
}

func TestCentroidHistoryBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg := smallConfig()
	cfg.CentroidHistory = 5
	det, _ := NewDetector(cfg)
	driveWarmup(t, det, rng, linalg.Vector{0, 0, 0}, 0.3)
	for i := 0; i < 30; i++ {
		if _, err := det.Observe(cloud(rng, 64, linalg.Vector{0, 0, 0}, 0.3)); err != nil {
			t.Fatal(err)
		}
	}
	if len(det.centroids) > cfg.CentroidHistory {
		t.Errorf("centroid history %d exceeds cap %d", len(det.centroids), cfg.CentroidHistory)
	}
}

func TestProjectionDimCappedToInput(t *testing.T) {
	// 1-D input with ProjectionDim 2 must not fail: dim is capped.
	rng := rand.New(rand.NewSource(9))
	cfg := smallConfig()
	det, _ := NewDetector(cfg)
	for i := 0; i < 20; i++ {
		pts := make([]linalg.Vector, 64)
		for j := range pts {
			pts[j] = linalg.Vector{rng.NormFloat64()}
		}
		if _, err := det.Observe(pts); err != nil {
			t.Fatal(err)
		}
	}
	if !det.Ready() {
		t.Fatal("detector should be ready")
	}
	if det.PCA().OutputDim() != 1 {
		t.Errorf("OutputDim = %d, want 1", det.PCA().OutputDim())
	}
}
