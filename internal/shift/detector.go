package shift

import (
	"errors"
	"fmt"
	"math"

	"freewayml/internal/linalg"
	"freewayml/internal/pca"
	"freewayml/internal/stats"
)

// Config parametrizes the shift Detector. The zero value is not usable; use
// DefaultConfig as a starting point.
type Config struct {
	// WarmupPoints is n in Eq. 2-5: how many raw points to accumulate before
	// fitting the PCA model. Until then every batch classifies as warmup.
	WarmupPoints int
	// ProjectionDim is d, the number of PCA components (2 in the paper's
	// shift-graph study).
	ProjectionDim int
	// HistoryK is k in Eq. 8-10: how many recent shift distances the
	// severity statistics are computed over.
	HistoryK int
	// Alpha is the severity threshold α (1.96 in the paper): a batch with
	// |M| > α is a severe shift.
	Alpha float64
	// WeightDecay is the per-step geometric decay of the recency weights wᵢ
	// in Eq. 8 (1 gives uniform weights).
	WeightDecay float64
	// CentroidHistory bounds how many past batch centroids are retained for
	// the nearest-history distance d_h.
	CentroidHistory int
	// RecentExclusion excludes the most recent batches from the d_h search:
	// the "previously occurred" distribution of Pattern C must be an older
	// one, not the batch we just shifted away from.
	RecentExclusion int
	// MinSeverityHistory is the minimum number of recorded shift distances
	// before severity classification starts; with fewer, batches classify
	// as PatternA (no evidence of a severe shift yet).
	MinSeverityHistory int
	// MinSevereRatio requires a severe shift to also be material: d_t must
	// exceed MinSevereRatio × μ_d. The paper's pure z-score test (Eq. 10)
	// flags statistically significant but physically tiny fluctuations on
	// near-stationary streams where σ_d is minuscule; this guard suppresses
	// them. Set to 0 to recover the paper's exact rule.
	MinSevereRatio float64
	// ReoccurRatio strengthens the Pattern C condition: the paper requires
	// d_h < d_t, which degenerates when the stream jumps to novel territory
	// equidistant from everything (d_h ≈ d_t, with ties broken by noise).
	// Here Pattern C requires d_h < ReoccurRatio × d_t, i.e. the matched
	// historical distribution must be meaningfully closer than the batch we
	// just left. Set to 1 to recover the paper's exact rule.
	ReoccurRatio float64
}

// DefaultConfig mirrors the paper's experimental setup: α = 1.96, severity
// judged against the last 20 shifts with mild recency weighting. The
// projection keeps 3 components: the paper's shift graph uses 2 for
// visualization, but detection benefits from one more — a shift orthogonal
// to the top warm-up components is otherwise invisible — while additional
// noise-dominated components dilute the distance signal.
func DefaultConfig() Config {
	return Config{
		WarmupPoints:       2048,
		ProjectionDim:      3,
		HistoryK:           20,
		Alpha:              1.96,
		WeightDecay:        0.95,
		CentroidHistory:    512,
		RecentExclusion:    5,
		MinSeverityHistory: 5,
		MinSevereRatio:     2.5,
		ReoccurRatio:       0.5,
	}
}

// Validate reports the first invalid field of the config.
func (c Config) Validate() error {
	switch {
	case c.WarmupPoints < 1:
		return errors.New("shift: WarmupPoints must be >= 1")
	case c.ProjectionDim < 1:
		return errors.New("shift: ProjectionDim must be >= 1")
	case c.HistoryK < 1:
		return errors.New("shift: HistoryK must be >= 1")
	case c.Alpha <= 0:
		return errors.New("shift: Alpha must be > 0")
	case c.WeightDecay <= 0 || c.WeightDecay > 1:
		return errors.New("shift: WeightDecay must be in (0, 1]")
	case c.CentroidHistory < 1:
		return errors.New("shift: CentroidHistory must be >= 1")
	case c.RecentExclusion < 0:
		return errors.New("shift: RecentExclusion must be >= 0")
	case c.MinSeverityHistory < 1:
		return errors.New("shift: MinSeverityHistory must be >= 1")
	case c.MinSevereRatio < 0:
		return errors.New("shift: MinSevereRatio must be >= 0")
	case c.ReoccurRatio <= 0 || c.ReoccurRatio > 1:
		return errors.New("shift: ReoccurRatio must be in (0, 1]")
	}
	return nil
}

// Observation is the detector's verdict for one batch.
type Observation struct {
	// Batch is the 0-based index of the batch within the stream.
	Batch int
	// YBar is ȳ_t, the PCA projection of the batch mean (nil during warmup).
	YBar linalg.Vector
	// Distance is d_t (Eq. 7), the shift distance from the previous batch.
	Distance float64
	// Severity is M (Eq. 10), the weighted z-score of Distance.
	Severity float64
	// HistoryMean is μ_d (Eq. 8), the weighted mean of recent shift
	// distances the severity was judged against (0 during early batches).
	HistoryMean float64
	// NearestHistory is d_h: the distance from ȳ_t to the nearest retained
	// older centroid (+Inf when no eligible history exists).
	NearestHistory float64
	// NearestHistoryIndex is the batch index of that nearest older centroid
	// (-1 when none exists).
	NearestHistoryIndex int
	// Pattern is the classification: Warmup, A, B, or C. A1/A2 refinement
	// happens later with the ASW's disorder (SubClassifyA).
	Pattern Pattern
}

// Detector ingests one batch mean at a time and classifies the stream's
// shift pattern. It is not safe for concurrent use; FreewayML's pipeline
// owns one detector per stream.
type Detector struct {
	cfg Config

	warmup    []linalg.Vector
	model     *pca.Model
	prev      linalg.Vector // ȳ_{t-1}
	distances *stats.SlidingWindow
	weights   []float64

	centroids []centroid // ring buffer of past ȳ, oldest first
	batch     int
}

type centroid struct {
	y     linalg.Vector
	batch int
}

// NewDetector returns a detector with the given config.
func NewDetector(cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{
		cfg:       cfg,
		distances: stats.NewSlidingWindow(cfg.HistoryK),
		weights:   stats.RecencyWeights(cfg.HistoryK, cfg.WeightDecay),
	}, nil
}

// Ready reports whether the PCA warm-up has completed.
func (d *Detector) Ready() bool { return d.model != nil }

// PCA returns the fitted PCA model, or nil during warm-up. The coherent
// experience clustering path reuses it to cluster in the reduced space.
func (d *Detector) PCA() *pca.Model { return d.model }

// Observe ingests the raw points of the next batch and returns the shift
// observation for it. During warm-up it accumulates points and returns a
// PatternWarmup observation.
func (d *Detector) Observe(points []linalg.Vector) (Observation, error) {
	obs := Observation{Batch: d.batch, Pattern: PatternWarmup, NearestHistory: math.Inf(1), NearestHistoryIndex: -1}
	defer func() { d.batch++ }()

	if len(points) == 0 {
		return obs, errors.New("shift: empty batch")
	}
	if d.model == nil {
		d.warmup = append(d.warmup, points...)
		if len(d.warmup) < d.cfg.WarmupPoints {
			return obs, nil
		}
		dim := d.cfg.ProjectionDim
		if inDim := len(d.warmup[0]); dim > inDim {
			dim = inDim
		}
		m, err := pca.Fit(d.warmup, dim)
		if err != nil {
			return obs, fmt.Errorf("shift: PCA warm-up fit: %w", err)
		}
		d.model = m
		d.warmup = nil
		// The warm-up block itself becomes the first reference centroid.
	}

	mean, err := linalg.Mean(points)
	if err != nil {
		return obs, err
	}
	y, err := d.model.ProjectMean(mean)
	if err != nil {
		return obs, err
	}
	obs.YBar = y

	if d.prev == nil {
		// First projected batch: no previous centroid, no distance yet.
		d.prev = y
		d.pushCentroid(y)
		obs.Pattern = PatternA
		return obs, nil
	}

	dt := y.Distance(d.prev) // Eq. 7
	obs.Distance = dt

	hist := d.distances.NewestFirst()
	material := true
	if len(hist) >= d.cfg.MinSeverityHistory {
		mu, err := stats.WeightedMean(hist, d.weights[:len(hist)])
		if err != nil {
			return obs, err
		}
		sigma, err := stats.StdDevAround(hist, mu)
		if err != nil {
			return obs, err
		}
		obs.Severity = stats.ZScore(dt, mu, sigma)
		obs.HistoryMean = mu
		material = dt > d.cfg.MinSevereRatio*mu
	}

	dh, hIdx := d.nearestHistory(y)
	obs.NearestHistory = dh
	obs.NearestHistoryIndex = hIdx

	severe := obs.Severity > d.cfg.Alpha && material
	switch {
	case severe && dh < d.cfg.ReoccurRatio*dt:
		obs.Pattern = PatternC
	case severe:
		obs.Pattern = PatternB
	default:
		obs.Pattern = PatternA
	}

	d.distances.Push(dt)
	d.prev = y
	d.pushCentroid(y)
	return obs, nil
}

// nearestHistory returns the distance to — and the batch index of — the
// nearest retained centroid, excluding the cfg.RecentExclusion most recent
// ones (the current neighborhood, which would make every severe shift look
// reoccurring).
func (d *Detector) nearestHistory(y linalg.Vector) (float64, int) {
	eligible := len(d.centroids) - d.cfg.RecentExclusion
	best := math.Inf(1)
	bestIdx := -1
	for i := 0; i < eligible; i++ {
		if dist := y.Distance(d.centroids[i].y); dist < best {
			best = dist
			bestIdx = d.centroids[i].batch
		}
	}
	return best, bestIdx
}

func (d *Detector) pushCentroid(y linalg.Vector) {
	d.centroids = append(d.centroids, centroid{y: y.Clone(), batch: d.batch})
	if len(d.centroids) > d.cfg.CentroidHistory {
		d.centroids = d.centroids[1:]
	}
}

// HistoryDistances returns a copy of the recent shift distances, newest
// first (the dᵢ of Eq. 8).
func (d *Detector) HistoryDistances() []float64 { return d.distances.NewestFirst() }
