// Package coalesce fuses small batches arriving concurrently for the same
// stream into one larger batch, so the compute core amortizes its per-pass
// overhead (staging, GEMM setup, detector bookkeeping) over many requests.
//
// The mechanism is group commit, so it is adaptive by construction: when a
// stream is idle its first batch runs immediately with zero added latency,
// and while that pass is in flight every batch that arrives for the same
// stream packs into the next group, which starts the instant the running
// pass completes. Load widens the fused batches automatically; there is no
// tuning knob that trades idle latency for throughput. An optional Window
// adds a fixed gathering delay on top, and MaxRows bounds group size.
//
// Groups are keyed by (stream id, labeledness): batches for different
// streams go to different models and cannot share a GEMM pass, and labeled
// updates must not fuse with inference-only traffic.
//
// Ownership: Submit packs the caller's rows into group-owned storage before
// returning control, so callers may recycle their buffers (e.g. return a
// pooled wire frame) as soon as Submit comes back — even if their context
// is cancelled while the group is still queued.
package coalesce

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"freewayml/internal/linalg"
	"freewayml/internal/obs"
)

// Batch is one fused group as handed to the Runner. X's rows are adjacent
// views into Fused's row-major slab, so tensor-aware models can consume the
// whole group as a single blocked-GEMM pass. The slab is freshly built per
// group and never recycled: the learning core retains row references past
// the pass (sliding windows, replay buffers), so the batch must stay valid
// indefinitely.
type Batch struct {
	// ID is the stream the group belongs to.
	ID string
	// X holds the packed feature rows of every member, in submission order.
	// nil for a native float32 group (X32 is set instead).
	X [][]float64
	// X32 holds the packed rows of a native float32 inference group (see
	// SubmitInfer32); exactly one of X/X32 is non-nil.
	X32 [][]float32
	// Y holds the packed labels, or nil for an inference-only group.
	Y []int
	// Fused is the row-major tensor behind X (nil for float32 groups).
	Fused *linalg.Tensor
	// Fused32 is the row-major tensor behind X32 (nil for float64 groups).
	Fused32 *linalg.Tensor32
	// Members is the number of submitted batches packed into this group.
	Members int
	// TraceIDs lists the request trace ids of the members that carried one,
	// submission order. May be shorter than Members (untraced members are
	// not represented); nil when no member was traced.
	TraceIDs []string
	// Segs maps each member to its stream and row range, in submission
	// order — set only for cross-stream inference groups (ID is then empty).
	Segs []Segment
}

// Segment is one member's slice of a cross-stream inference group.
type Segment struct {
	// ID is the member's stream.
	ID string
	// Lo and Hi delimit the member's rows in the fused slab (half-open).
	Lo, Hi int
}

// Runner executes one fused group and returns an opaque result shared by
// all members. It runs outside any member's request context: by the time a
// group runs, members may already have given up waiting, but their rows are
// in the group and the pass must complete for the others.
type Runner func(b Batch) (any, error)

// Result is what one member gets back from a fused pass.
type Result struct {
	// Out is the Runner's result, shared by every member of the group.
	Out any
	// Lo and Hi delimit this member's rows within the fused batch
	// (half-open, so per-member predictions are Pred[Lo:Hi]).
	Lo, Hi int
	// Member is this member's ordinal within the group (submission order),
	// matching its index in Batch.Segs for cross-stream inference groups.
	Member int
	// Members and Rows describe the whole group.
	Members int
	Rows    int
}

// Config parameterizes a Coalescer.
type Config struct {
	// Run executes a fused group. Required.
	Run Runner
	// Window is an optional extra gathering delay applied after a group
	// becomes runnable. Zero (the default) is pure group commit: no added
	// latency when idle.
	Window time.Duration
	// MaxRows seals a group once joining would push it past this many rows;
	// the next batch opens a fresh group behind it. Zero means unbounded. A
	// single batch larger than MaxRows still runs, as a group of its own.
	MaxRows int
	// Metrics, when set, records coalescing behavior.
	Metrics *Metrics
}

// Metrics is the coalescer's observability surface.
type Metrics struct {
	Submits *obs.Counter   // member batches submitted
	Passes  *obs.Counter   // fused passes executed
	Members *obs.Histogram // member batches per pass
	Rows    *obs.Histogram // rows per pass
	Wait    *obs.Histogram // seconds from group open to pass start
	Fill    *obs.Histogram // rows/MaxRows at pass start (MaxRows > 0 only)
	Depth   *obs.Gauge     // groups gathering or queued right now
}

// NewMetrics registers the coalescer metric family on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Submits: reg.Counter("freeway_coalesce_submits_total", "Member batches submitted to the coalescer."),
		Passes:  reg.Counter("freeway_coalesce_passes_total", "Fused passes executed."),
		Members: reg.Histogram("freeway_coalesce_members", "Member batches fused per pass.", obs.ExponentialBuckets(1, 2, 8)),
		Rows:    reg.Histogram("freeway_coalesce_rows", "Rows per fused pass.", obs.ExponentialBuckets(1, 2, 12)),
		Wait:    reg.Histogram("freeway_coalesce_wait_seconds", "Time from group open to fused pass start.", nil),
		Fill:    reg.Histogram("freeway_coalesce_fill_ratio", "Rows over MaxRows at pass start.", obs.LinearBuckets(0.1, 0.1, 10)),
		Depth:   reg.Gauge("freeway_coalesce_depth", "Groups gathering or queued."),
	}
}

type key struct {
	id      string
	labeled bool
	// infer marks the cross-stream inference key: label-less rows from
	// every stream share one group (id is empty), since pure inference
	// carries no per-stream training state and per-stream snapshots can be
	// applied to row ranges of one fused slab.
	infer bool
	// f32 marks native float32 inference groups: their rows pack into the
	// float32 slab and must never fuse with float64 groups (mixing would
	// force an up-convert and lose the speed-tier's zero-widen property).
	f32 bool
}

// group is one fused batch being gathered, queued, or run. All fields
// except the channels are guarded by the coalescer mutex until the group is
// sealed; out and err are written before done is closed and read only
// after.
type group struct {
	key     key
	cols    int
	flat    []float64 // packed row-major features (float64 groups)
	flat32  []float32 // packed row-major features (native float32 groups)
	y       []int
	rows    int
	members int
	traces  []string
	segs    []Segment
	sealed  bool
	created time.Time
	ready   chan struct{} // closed when the group may start its pass
	done    chan struct{} // closed when out/err are valid
	out     any
	err     error
}

// keyState chains the groups of one key: at most one pass runs at a time
// per key, cur (if any) is the group currently accepting members, and
// pending holds sealed-or-gathering groups awaiting their turn in FIFO
// order.
type keyState struct {
	running bool
	cur     *group
	pending []*group
}

// Coalescer fuses concurrent same-key batches into group-committed passes.
type Coalescer struct {
	cfg   Config
	mu    sync.Mutex
	keys  map[key]*keyState
	depth int
}

// New validates cfg and builds a Coalescer.
func New(cfg Config) (*Coalescer, error) {
	if cfg.Run == nil {
		return nil, errors.New("coalesce: Config.Run is required")
	}
	if cfg.Window < 0 || cfg.MaxRows < 0 {
		return nil, errors.New("coalesce: Window and MaxRows must be >= 0")
	}
	return &Coalescer{cfg: cfg, keys: make(map[key]*keyState)}, nil
}

// Submit packs the batch into the open group for (id, labeledness of y) —
// opening one if needed — and blocks until the group's pass completes,
// returning this member's row range alongside the shared result. If ctx is
// cancelled while waiting, Submit returns ctx.Err(); the rows stay in the
// group and the pass still runs for the remaining members.
func (c *Coalescer) Submit(ctx context.Context, id string, x [][]float64, y []int) (Result, error) {
	return c.SubmitTraced(ctx, id, "", x, y)
}

// SubmitTraced is Submit with a request trace id recorded as part of the
// group's membership, so the fused pass's TraceEvent can name every
// request it served. An empty traceID leaves the membership untouched.
func (c *Coalescer) SubmitTraced(ctx context.Context, id, traceID string, x [][]float64, y []int) (Result, error) {
	return c.submit(ctx, key{id: id, labeled: y != nil}, id, traceID, x, nil, y)
}

// SubmitInfer packs label-less rows into the cross-stream inference group:
// rows from every stream share one fused slab and one blocked-GEMM pass,
// and the Runner scatters per-stream results back via Batch.Segs and each
// member's Result.Member ordinal. Row widths must match across streams (all
// sessions of one server share a feature dimensionality); a width change
// seals the group like any other.
func (c *Coalescer) SubmitInfer(ctx context.Context, id, traceID string, x [][]float64) (Result, error) {
	return c.submit(ctx, key{infer: true}, id, traceID, x, nil, nil)
}

// SubmitInfer32 is SubmitInfer for natively narrow rows: float32 frames pack
// into a float32 slab and the Runner receives Batch.X32/Fused32 — no value
// is ever widened to float64 on this path. Float32 groups never fuse with
// float64 groups (a separate key bit), so each pass is homogeneous.
func (c *Coalescer) SubmitInfer32(ctx context.Context, id, traceID string, x [][]float32) (Result, error) {
	return c.submit(ctx, key{infer: true, f32: true}, id, traceID, nil, x, nil)
}

// submit packs the rows into the open group for k — opening one if needed —
// and blocks until the group's pass completes. segID names the member's
// stream in Batch.Segs for cross-stream inference keys; per-stream keys
// carry the stream in k.id and record no segments.
func (c *Coalescer) submit(ctx context.Context, k key, segID, traceID string, x [][]float64, x32 [][]float32, y []int) (Result, error) {
	nrows := len(x)
	if k.f32 {
		nrows = len(x32)
	}
	if nrows == 0 {
		return Result{}, errors.New("coalesce: empty batch")
	}
	var cols int
	if k.f32 {
		cols = len(x32[0])
		for i := range x32 {
			if len(x32[i]) != cols {
				return Result{}, fmt.Errorf("coalesce: row %d has %d features, row 0 has %d", i, len(x32[i]), cols)
			}
		}
	} else {
		cols = len(x[0])
		for i := range x {
			if len(x[i]) != cols {
				return Result{}, fmt.Errorf("coalesce: row %d has %d features, row 0 has %d", i, len(x[i]), cols)
			}
		}
	}
	if cols == 0 {
		return Result{}, errors.New("coalesce: zero-width rows")
	}
	if y != nil && len(y) != nrows {
		return Result{}, fmt.Errorf("coalesce: %d labels for %d rows", len(y), nrows)
	}

	c.mu.Lock()
	ks := c.keys[k]
	if ks == nil {
		ks = &keyState{}
		c.keys[k] = ks
	}
	g := ks.cur
	if g != nil && (g.sealed || g.cols != cols ||
		(c.cfg.MaxRows > 0 && g.rows > 0 && g.rows+nrows > c.cfg.MaxRows)) {
		// cur cannot take this member; seal it where it stands in the chain
		// and open a fresh group behind it.
		g.sealed = true
		ks.cur = nil
		g = nil
	}
	fresh := false
	if g == nil {
		g = &group{
			key:     k,
			cols:    cols,
			created: time.Now(),
			ready:   make(chan struct{}),
			done:    make(chan struct{}),
		}
		fresh = true
		ks.cur = g
		if !ks.running {
			ks.running = true
			close(g.ready)
		} else {
			ks.pending = append(ks.pending, g)
		}
		c.depth++
		if m := c.cfg.Metrics; m != nil {
			m.Depth.Set(float64(c.depth))
		}
	}
	lo := g.rows
	if k.f32 {
		for _, row := range x32 {
			g.flat32 = append(g.flat32, row...)
		}
	} else {
		for _, row := range x {
			g.flat = append(g.flat, row...)
		}
	}
	if y != nil {
		g.y = append(g.y, y...)
	}
	g.rows += nrows
	member := g.members
	g.members++
	if traceID != "" {
		g.traces = append(g.traces, traceID)
	}
	hi := g.rows
	if k.infer {
		g.segs = append(g.segs, Segment{ID: segID, Lo: lo, Hi: hi})
	}
	c.mu.Unlock()

	if m := c.cfg.Metrics; m != nil {
		m.Submits.Inc()
	}
	if fresh {
		go c.runWhenReady(g)
	}

	select {
	case <-g.done:
		if g.err != nil {
			return Result{}, g.err
		}
		return Result{Out: g.out, Lo: lo, Hi: hi, Member: member, Members: g.members, Rows: g.rows}, nil
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// runWhenReady is each group's dedicated executor: it waits for the group's
// turn, optionally gathers for Window longer, seals the member list, runs
// the fused pass, then promotes the key's next group.
func (c *Coalescer) runWhenReady(g *group) {
	<-g.ready
	if c.cfg.Window > 0 {
		time.Sleep(c.cfg.Window)
	}

	c.mu.Lock()
	ks := c.keys[g.key]
	g.sealed = true
	if ks.cur == g {
		ks.cur = nil
	}
	c.depth--
	rows, cols := g.rows, g.cols
	var fused *linalg.Tensor
	var fused32 *linalg.Tensor32
	var xv [][]float64
	var xv32 [][]float32
	if g.key.f32 {
		fused32 = linalg.Tensor32View(g.flat32, rows, cols)
		xv32 = make([][]float32, rows)
		for i := range xv32 {
			xv32[i] = g.flat32[i*cols : (i+1)*cols : (i+1)*cols]
		}
	} else {
		fused = linalg.TensorView(g.flat, rows, cols)
		xv = make([][]float64, rows)
		for i := range xv {
			xv[i] = g.flat[i*cols : (i+1)*cols : (i+1)*cols]
		}
	}
	if m := c.cfg.Metrics; m != nil {
		m.Depth.Set(float64(c.depth))
		m.Members.Observe(float64(g.members))
		m.Rows.Observe(float64(rows))
		m.Wait.Observe(time.Since(g.created).Seconds())
		if c.cfg.MaxRows > 0 {
			m.Fill.Observe(float64(rows) / float64(c.cfg.MaxRows))
		}
	}
	c.mu.Unlock()

	out, err := c.cfg.Run(Batch{ID: g.key.id, X: xv, X32: xv32, Y: g.y, Fused: fused, Fused32: fused32, Members: g.members, TraceIDs: g.traces, Segs: g.segs})
	if m := c.cfg.Metrics; m != nil {
		m.Passes.Inc()
	}

	c.mu.Lock()
	g.out, g.err = out, err
	if len(ks.pending) > 0 {
		next := ks.pending[0]
		ks.pending = ks.pending[1:]
		close(next.ready)
	} else {
		ks.running = false
		if ks.cur == nil {
			// Nothing gathering and nothing queued: drop the key so idle
			// streams do not accumulate state.
			delete(c.keys, g.key)
		}
	}
	c.mu.Unlock()
	close(g.done)
}
