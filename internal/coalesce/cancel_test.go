package coalesce

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestInferCancelMidGroupAccountingAndNoLeak: waiters of the cross-stream
// inference group whose context dies mid-gather must return promptly with
// ctx.Err(), while the group still runs with their rows (group-commit: rows
// are packed at submit time), the fused slab and segment accounting stay
// consistent, surviving members keep their ordinals, and — checked against
// a goroutine baseline — nothing leaks: every group executor exits once its
// pass completes, whether or not anyone is left waiting.
func TestInferCancelMidGroupAccountingAndNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	gate := make(chan struct{})
	var calls atomic.Int64
	type passInfo struct {
		rows, members, segs int
		fusedRows           int
	}
	var second atomic.Pointer[passInfo]
	run := func(b Batch) (any, error) {
		if calls.Add(1) == 1 {
			<-gate // hold the first pass so a multi-member group gathers behind it
		} else {
			second.Store(&passInfo{
				rows: len(b.X), members: b.Members, segs: len(b.Segs),
				fusedRows: b.Fused.Rows,
			})
		}
		return echoRun(b)
	}
	c, err := New(Config{Run: run})
	if err != nil {
		t.Fatal(err)
	}

	// Open the infer key with a gated pass.
	firstDone := make(chan error, 1)
	go func() {
		_, err := c.SubmitInfer(context.Background(), "a", "", [][]float64{row(0)})
		firstDone <- err
	}()
	waitFor(t, func() bool { return calls.Load() == 1 })

	// Three streams gather into the next cross-stream group; the middle one
	// will abandon its wait.
	ctx, cancel := context.WithCancel(context.Background())
	quitterDone := make(chan error, 1)
	go func() {
		_, err := c.SubmitInfer(ctx, "b", "", [][]float64{row(1), row(2)})
		quitterDone <- err
	}()
	// Joins are sequenced (wait for each member to land) so the ordinal and
	// row-range assertions below are deterministic: quitter=0, then 1, 2.
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		ks := c.keys[key{infer: true}]
		return ks != nil && ks.cur != nil && ks.cur.members == 1
	})
	type stay struct {
		res Result
		err error
	}
	stayerA := make(chan stay, 1)
	stayerC := make(chan stay, 1)
	go func() {
		res, err := c.SubmitInfer(context.Background(), "a", "", [][]float64{row(3)})
		stayerA <- stay{res, err}
	}()
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		ks := c.keys[key{infer: true}]
		return ks != nil && ks.cur != nil && ks.cur.members == 2
	})
	go func() {
		res, err := c.SubmitInfer(context.Background(), "c", "", [][]float64{row(4)})
		stayerC <- stay{res, err}
	}()
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		ks := c.keys[key{infer: true}]
		return ks != nil && ks.cur != nil && ks.cur.members == 3
	})

	// Cancel mid-gather: the quitter returns immediately (the pass has not
	// started — its executor is still queued behind the gated one).
	cancel()
	select {
	case err := <-quitterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("quitter err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter did not return while the group was still gathering")
	}

	// Release the first pass; the gathered group runs with ALL packed rows —
	// including the quitter's (group-commit), with segment accounting intact.
	close(gate)
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	sa := <-stayerA
	sc := <-stayerC
	if sa.err != nil || sc.err != nil {
		t.Fatalf("stayers: %v, %v", sa.err, sc.err)
	}
	info := second.Load()
	if info == nil {
		t.Fatal("second pass never ran")
	}
	if info.rows != 4 || info.fusedRows != 4 {
		t.Errorf("second pass rows = %d (slab %d), want 4 (quitter's 2 rows included)", info.rows, info.fusedRows)
	}
	if info.members != 3 || info.segs != 3 {
		t.Errorf("second pass members = %d, segs = %d, want 3 each", info.members, info.segs)
	}
	// The quitter held ordinal 0 of the gathered group; survivors keep 1 and 2.
	if sa.res.Member != 1 || sc.res.Member != 2 {
		t.Errorf("survivor ordinals = %d, %d, want 1, 2", sa.res.Member, sc.res.Member)
	}
	if sa.res.Lo != 2 || sa.res.Hi != 3 || sc.res.Lo != 3 || sc.res.Hi != 4 {
		t.Errorf("survivor ranges = [%d,%d) [%d,%d), want [2,3) [3,4)", sa.res.Lo, sa.res.Hi, sc.res.Lo, sc.res.Hi)
	}

	// The key must drain and every executor goroutine exit.
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return len(c.keys) == 0 && c.depth == 0
	})
	waitFor(t, func() bool { return runtime.NumGoroutine() <= baseline })
}
