package coalesce

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"freewayml/internal/obs"
)

// echoRun returns the fused rows so members can check scatter ranges.
type echoOut struct {
	x       [][]float64
	y       []int
	members int
}

func echoRun(b Batch) (any, error) {
	cp := make([][]float64, len(b.X))
	for i, r := range b.X {
		cp[i] = append([]float64(nil), r...)
	}
	return echoOut{x: cp, y: append([]int(nil), b.Y...), members: b.Members}, nil
}

func row(vals ...float64) []float64 { return vals }

func TestSoloPassThrough(t *testing.T) {
	c, err := New(Config{Run: echoRun})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Submit(context.Background(), "s", [][]float64{row(1, 2), row(3, 4)}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lo != 0 || res.Hi != 2 || res.Members != 1 || res.Rows != 2 {
		t.Fatalf("solo result %+v", res)
	}
	out := res.Out.(echoOut)
	if out.x[1][0] != 3 || out.y[1] != 1 {
		t.Fatalf("echoed batch %+v", out)
	}
}

// TestGroupCommitFuses pins the core behavior: batches arriving while a
// pass is in flight fuse into one group that runs right after it.
func TestGroupCommitFuses(t *testing.T) {
	gate := make(chan struct{})
	var calls atomic.Int64
	run := func(b Batch) (any, error) {
		if calls.Add(1) == 1 {
			<-gate // hold the first pass so followers pile up
		}
		return echoRun(b)
	}
	c, err := New(Config{Run: run})
	if err != nil {
		t.Fatal(err)
	}

	firstDone := make(chan error, 1)
	go func() {
		_, err := c.Submit(context.Background(), "s", [][]float64{row(0, 0)}, nil)
		firstDone <- err
	}()
	// Wait until the first pass is actually inside Run.
	waitFor(t, func() bool { return calls.Load() == 1 })

	const followers = 4
	results := make(chan Result, followers)
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := c.Submit(context.Background(), "s",
				[][]float64{row(float64(i), 1), row(float64(i), 2)}, nil)
			if err != nil {
				t.Error(err)
				return
			}
			results <- res
		}()
	}
	// Followers must all be packed into the key's next group before release.
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		ks := c.keys[key{id: "s"}]
		return ks != nil && ks.cur != nil && ks.cur.members == followers
	})
	close(gate)
	wg.Wait()
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}

	close(results)
	for res := range results {
		if res.Members != followers || res.Rows != 2*followers {
			t.Fatalf("follower saw group %d members %d rows, want %d/%d",
				res.Members, res.Rows, followers, 2*followers)
		}
		out := res.Out.(echoOut)
		mine := out.x[res.Lo:res.Hi]
		if len(mine) != 2 || mine[0][1] != 1 || mine[1][1] != 2 || mine[0][0] != mine[1][0] {
			t.Fatalf("scatter range [%d:%d) holds someone else's rows: %v", res.Lo, res.Hi, mine)
		}
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("%d passes, want 2 (solo + fused)", got)
	}
}

func TestMaxRowsSeals(t *testing.T) {
	gate := make(chan struct{})
	var calls atomic.Int64
	var maxRows atomic.Int64
	run := func(b Batch) (any, error) {
		if calls.Add(1) == 1 {
			<-gate
		}
		if n := int64(len(b.X)); n > maxRows.Load() {
			maxRows.Store(n)
		}
		return echoRun(b)
	}
	c, err := New(Config{Run: run, MaxRows: 4})
	if err != nil {
		t.Fatal(err)
	}

	firstDone := make(chan error, 1)
	go func() {
		_, err := c.Submit(context.Background(), "s", [][]float64{row(9)}, nil)
		firstDone <- err
	}()
	waitFor(t, func() bool { return calls.Load() == 1 })

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ { // 6×2 rows against MaxRows=4 → ≥3 groups
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Submit(context.Background(), "s", [][]float64{row(1), row(2)}, nil); err != nil {
				t.Error(err)
			}
		}()
	}
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		total := 0
		if ks := c.keys[key{id: "s"}]; ks != nil {
			if ks.cur != nil {
				total += ks.cur.members
			}
			for _, g := range ks.pending {
				if g != ks.cur {
					total += g.members
				}
			}
		}
		return total == 6
	})
	close(gate)
	wg.Wait()
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	if maxRows.Load() > 4 {
		t.Fatalf("a fused pass had %d rows, cap is 4", maxRows.Load())
	}

	// A single oversized batch must still run, as its own group.
	res, err := c.Submit(context.Background(), "big", [][]float64{row(1), row(2), row(3), row(4), row(5), row(6)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 6 || res.Members != 1 {
		t.Fatalf("oversized batch result %+v", res)
	}
}

func TestLabeledUnlabeledNotFused(t *testing.T) {
	gate := make(chan struct{})
	var calls atomic.Int64
	var labeledRows, unlabeledRows atomic.Int64
	run := func(b Batch) (any, error) {
		if calls.Add(1) == 1 {
			<-gate
		}
		if b.Y != nil {
			labeledRows.Add(int64(len(b.X)))
			if len(b.Y) != len(b.X) {
				return nil, fmt.Errorf("group has %d labels for %d rows", len(b.Y), len(b.X))
			}
		} else {
			unlabeledRows.Add(int64(len(b.X)))
		}
		return echoRun(b)
	}
	c, err := New(Config{Run: run})
	if err != nil {
		t.Fatal(err)
	}
	firstDone := make(chan error, 1)
	go func() {
		_, err := c.Submit(context.Background(), "s", [][]float64{row(0)}, []int{1})
		firstDone <- err
	}()
	waitFor(t, func() bool { return calls.Load() == 1 })

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		labeled := i == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			var y []int
			if labeled {
				y = []int{0}
			}
			if _, err := c.Submit(context.Background(), "s", [][]float64{row(1)}, y); err != nil {
				t.Error(err)
			}
		}()
	}
	// The unlabeled key is independent: its pass runs to completion while the
	// labeled key's gate is still held, proving the two never fuse. The
	// labeled follower must be queued behind the gated pass.
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		lab := c.keys[key{id: "s", labeled: true}]
		return lab != nil && lab.cur != nil && lab.cur.members == 1 &&
			unlabeledRows.Load() == 1
	})
	close(gate)
	wg.Wait()
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	if labeledRows.Load() != 2 || unlabeledRows.Load() != 1 {
		t.Fatalf("labeled rows %d unlabeled %d, want 2/1", labeledRows.Load(), unlabeledRows.Load())
	}
}

func TestRunErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	c, err := New(Config{Run: func(Batch) (any, error) { return nil, boom }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(context.Background(), "s", [][]float64{row(1)}, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestSubmitRejects(t *testing.T) {
	c, err := New(Config{Run: echoRun})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.Submit(ctx, "s", nil, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := c.Submit(ctx, "s", [][]float64{{}}, nil); err == nil {
		t.Fatal("zero-width rows accepted")
	}
	if _, err := c.Submit(ctx, "s", [][]float64{row(1, 2), row(3)}, nil); err == nil {
		t.Fatal("ragged batch accepted")
	}
	if _, err := c.Submit(ctx, "s", [][]float64{row(1)}, []int{0, 1}); err == nil {
		t.Fatal("label mismatch accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil Run accepted")
	}
}

// TestCancelledMemberDoesNotSinkGroup: a member that gives up waiting gets
// ctx.Err(), and the group still runs with its rows for the others.
func TestCancelledMemberDoesNotSinkGroup(t *testing.T) {
	gate := make(chan struct{})
	var calls atomic.Int64
	var fusedRows atomic.Int64
	run := func(b Batch) (any, error) {
		if calls.Add(1) == 1 {
			<-gate
		} else {
			fusedRows.Store(int64(len(b.X)))
		}
		return echoRun(b)
	}
	c, err := New(Config{Run: run})
	if err != nil {
		t.Fatal(err)
	}
	firstDone := make(chan error, 1)
	go func() {
		_, err := c.Submit(context.Background(), "s", [][]float64{row(0)}, nil)
		firstDone <- err
	}()
	waitFor(t, func() bool { return calls.Load() == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	quitterDone := make(chan error, 1)
	go func() {
		_, err := c.Submit(ctx, "s", [][]float64{row(1)}, nil)
		quitterDone <- err
	}()
	stayerDone := make(chan error, 1)
	go func() {
		_, err := c.Submit(context.Background(), "s", [][]float64{row(2)}, nil)
		stayerDone <- err
	}()
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		ks := c.keys[key{id: "s"}]
		return ks != nil && ks.cur != nil && ks.cur.members == 2
	})
	cancel()
	if err := <-quitterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("quitter err = %v, want context.Canceled", err)
	}
	close(gate)
	if err := <-stayerDone; err != nil {
		t.Fatal(err)
	}
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	if fusedRows.Load() != 2 {
		t.Fatalf("fused pass ran %d rows, want 2 (quitter's row included)", fusedRows.Load())
	}
}

func TestWindowGathers(t *testing.T) {
	var calls atomic.Int64
	run := func(b Batch) (any, error) {
		calls.Add(1)
		return echoRun(b)
	}
	c, err := New(Config{Run: run, Window: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	const n = 4
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			res, err := c.Submit(context.Background(), "s", [][]float64{row(1)}, nil)
			if err != nil {
				t.Error(err)
				return
			}
			if res.Members != n {
				t.Errorf("window pass fused %d members, want %d", res.Members, n)
			}
		}()
	}
	close(start)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("%d passes, want 1", calls.Load())
	}
}

func TestMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	c, err := New(Config{Run: echoRun, MaxRows: 8, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(context.Background(), "s", [][]float64{row(1), row(2)}, nil); err != nil {
		t.Fatal(err)
	}
	if m.Submits.Value() != 1 || m.Passes.Value() != 1 {
		t.Fatalf("submits %d passes %d, want 1/1", m.Submits.Value(), m.Passes.Value())
	}
	if m.Members.Count() != 1 || m.Rows.Count() != 1 || m.Wait.Count() != 1 || m.Fill.Count() != 1 {
		t.Fatal("pass histograms not observed")
	}
	if m.Depth.Value() != 0 {
		t.Fatalf("depth %v after drain, want 0", m.Depth.Value())
	}
}

// TestConcurrentStress drives many keys and members together; run with
// -race this is the memory-model check for the whole group chain.
func TestConcurrentStress(t *testing.T) {
	var rows atomic.Int64
	run := func(b Batch) (any, error) {
		rows.Add(int64(len(b.X)))
		return echoRun(b)
	}
	c, err := New(Config{Run: run, MaxRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 16, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := fmt.Sprintf("s%d", w%4)
				var y []int
				if i%2 == 0 {
					y = []int{0, 1}
				}
				res, err := c.Submit(context.Background(), id, [][]float64{row(1, 2), row(3, 4)}, y)
				if err != nil {
					t.Error(err)
					return
				}
				if res.Hi-res.Lo != 2 {
					t.Errorf("member range %d rows, want 2", res.Hi-res.Lo)
				}
			}
		}()
	}
	wg.Wait()
	if got := rows.Load(); got != workers*per*2 {
		t.Fatalf("fused passes covered %d rows, want %d", got, workers*per*2)
	}
	c.mu.Lock()
	leftover := len(c.keys)
	c.mu.Unlock()
	if leftover != 0 {
		t.Fatalf("%d key states leaked after drain", leftover)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSubmitInfer32 pins the native float32 group: rows arrive as f32, the
// Runner sees X32/Fused32 with no float64 slab, concurrent members fuse, and
// f32 groups never share a pass with f64 inference groups.
func TestSubmitInfer32(t *testing.T) {
	gate := make(chan struct{})
	var calls atomic.Int64
	type seen struct {
		x32     [][]float32
		x       [][]float64
		members int
	}
	run := func(b Batch) (any, error) {
		if calls.Add(1) == 1 {
			<-gate
		}
		if b.X32 != nil && (b.X != nil || b.Fused != nil) {
			t.Error("f32 group carried a float64 slab")
		}
		cp := make([][]float32, len(b.X32))
		for i, r := range b.X32 {
			cp[i] = append([]float32(nil), r...)
		}
		return seen{x32: cp, x: b.X, members: b.Members}, nil
	}
	c, err := New(Config{Run: run})
	if err != nil {
		t.Fatal(err)
	}

	firstDone := make(chan error, 1)
	go func() {
		_, err := c.SubmitInfer32(context.Background(), "a", "", [][]float32{{1, 2}})
		firstDone <- err
	}()
	waitFor(t, func() bool { return calls.Load() == 1 })

	// While the f32 pass is held, an f64 inference submit must run in its
	// own group (different key), not queue behind the f32 one.
	if _, err := c.SubmitInfer(context.Background(), "b", "", [][]float64{row(9, 9)}); err != nil {
		t.Fatal(err)
	}

	second := make(chan Result, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := c.SubmitInfer32(context.Background(), fmt.Sprintf("s%d", i), "",
				[][]float32{{float32(i), 5}})
			if err != nil {
				t.Error(err)
				return
			}
			second <- res
		}()
	}
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		ks := c.keys[key{infer: true, f32: true}]
		return ks != nil && ks.cur != nil && ks.cur.members == 2
	})
	close(gate)
	wg.Wait()
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	close(second)
	for res := range second {
		out := res.Out.(seen)
		if out.members != 2 || len(out.x32) != 2 {
			t.Fatalf("fused f32 group: %+v", out)
		}
		if got := out.x32[res.Lo][1]; got != 5 {
			t.Fatalf("scatter row [%d:%d) = %v", res.Lo, res.Hi, out.x32[res.Lo])
		}
	}
}
