// Package guard implements input sanitization for the streaming pipeline:
// the first line of FreewayML's fault-tolerance layer. Real streams carry
// NaN and Inf features (sensor dropouts, upstream divide-by-zero, protocol
// corruption), and a single non-finite value silently poisons every
// granularity model's weights through SGD. A Guard scans each batch before
// it reaches the detector or any model and applies a configurable policy:
// reject the batch, clamp the offending values, or impute them from running
// per-feature means.
package guard

import (
	"errors"
	"fmt"
	"math"
)

// Policy selects how non-finite feature values are handled.
type Policy int

const (
	// Off disables scanning entirely (the pre-guard behaviour; values pass
	// through untouched).
	Off Policy = iota
	// Reject refuses any batch containing a non-finite value with an error.
	// The learner's state is untouched; the caller decides whether to drop
	// or repair the batch.
	Reject
	// Clamp repairs in place: NaN becomes 0, ±Inf becomes ±ClampLimit.
	Clamp
	// Impute replaces every non-finite value with the running mean of its
	// feature over all finite values seen so far (0 before any are seen).
	Impute
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Off:
		return "off"
	case Reject:
		return "reject"
	case Clamp:
		return "clamp"
	case Impute:
		return "impute"
	default:
		return "unknown"
	}
}

// ParsePolicy maps a policy name to its value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "off":
		return Off, nil
	case "", "reject":
		return Reject, nil
	case "clamp":
		return Clamp, nil
	case "impute":
		return Impute, nil
	default:
		return Off, fmt.Errorf("guard: unknown policy %q (want off|reject|clamp|impute)", s)
	}
}

// DefaultClampLimit bounds the magnitude Clamp substitutes for ±Inf.
const DefaultClampLimit = 1e6

// ErrRejected wraps every rejection so callers can distinguish a refused
// batch (input fault, state untouched) from an internal failure.
var ErrRejected = errors.New("guard: batch rejected")

// Report counts what one Sanitize call found and repaired.
type Report struct {
	// NaNs and Infs count the non-finite values detected.
	NaNs, Infs int
	// Rows counts the rows containing at least one non-finite value.
	Rows int
}

// Total returns the number of non-finite values detected.
func (r Report) Total() int { return r.NaNs + r.Infs }

// Guard applies one policy to a stream of batches, maintaining the running
// per-feature means the Impute policy draws from. It is not safe for
// concurrent use; the learner serializes batches anyway.
type Guard struct {
	policy Policy
	limit  float64
	count  []float64 // finite observations per feature
	mean   []float64 // running mean per feature over finite values
}

// New builds a Guard for the given policy over dim-dimensional features.
func New(policy Policy, dim int) *Guard {
	g := &Guard{policy: policy, limit: DefaultClampLimit}
	if dim > 0 {
		g.count = make([]float64, dim)
		g.mean = make([]float64, dim)
	}
	return g
}

// Policy returns the guard's configured policy.
func (g *Guard) Policy() Policy { return g.policy }

// SetClampLimit overrides the ±Inf substitute magnitude (default 1e6).
func (g *Guard) SetClampLimit(limit float64) {
	if limit > 0 && !math.IsInf(limit, 0) && !math.IsNaN(limit) {
		g.limit = limit
	}
}

// FeatureMeans exposes the running per-feature means (diagnostics/tests).
func (g *Guard) FeatureMeans() []float64 {
	out := make([]float64, len(g.mean))
	copy(out, g.mean)
	return out
}

// Sanitize scans the batch and applies the policy. The returned matrix
// shares rows with the input except where repairs were made (copy-on-write:
// the caller's data is never mutated). Under Reject a batch with any
// non-finite value returns an error wrapping ErrRejected and a report of
// what was found. Under Off the input passes through unscanned.
func (g *Guard) Sanitize(x [][]float64) ([][]float64, Report, error) {
	if g.policy == Off {
		return x, Report{}, nil
	}
	var rep Report
	out := x
	copied := false
	for i, row := range x {
		var clean []float64 // private copy of row, allocated on first repair
		faults := 0
		for j, v := range row {
			switch {
			case math.IsNaN(v):
				rep.NaNs++
			case math.IsInf(v, 0):
				rep.Infs++
			default:
				continue
			}
			faults++
			if g.policy == Reject {
				continue // keep counting, repair nothing
			}
			if clean == nil {
				if !copied {
					out = make([][]float64, len(x))
					copy(out, x)
					copied = true
				}
				clean = append([]float64(nil), row...)
				out[i] = clean
			}
			clean[j] = g.repair(v, j)
		}
		if faults > 0 {
			rep.Rows++
		}
	}
	if rep.Total() > 0 && g.policy == Reject {
		return x, rep, fmt.Errorf("%w: %d NaN, %d Inf values in %d rows",
			ErrRejected, rep.NaNs, rep.Infs, rep.Rows)
	}
	g.updateMeans(x)
	return out, rep, nil
}

// repair returns the substitute for one non-finite value of feature j.
func (g *Guard) repair(v float64, j int) float64 {
	switch g.policy {
	case Clamp:
		if math.IsInf(v, 1) {
			return g.limit
		}
		if math.IsInf(v, -1) {
			return -g.limit
		}
		return 0 // NaN
	case Impute:
		if j < len(g.mean) && g.count[j] > 0 {
			return g.mean[j]
		}
		return 0
	default:
		return v
	}
}

// updateMeans folds the batch's originally-finite values into the running
// feature means (repaired values must not reinforce themselves).
func (g *Guard) updateMeans(x [][]float64) {
	if len(x) == 0 {
		return
	}
	if len(g.mean) < len(x[0]) {
		grown := make([]float64, len(x[0]))
		copy(grown, g.mean)
		g.mean = grown
		grownC := make([]float64, len(x[0]))
		copy(grownC, g.count)
		g.count = grownC
	}
	for _, row := range x {
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			g.count[j]++
			g.mean[j] += (v - g.mean[j]) / g.count[j]
		}
	}
}
