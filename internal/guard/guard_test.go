package guard

import (
	"errors"
	"math"
	"testing"
)

func dirtyBatch() [][]float64 {
	return [][]float64{
		{1, 2, 3},
		{math.NaN(), 5, math.Inf(1)},
		{7, math.Inf(-1), 9},
	}
}

func TestOffPassesThrough(t *testing.T) {
	g := New(Off, 3)
	in := dirtyBatch()
	out, rep, err := g.Sanitize(in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() != 0 {
		t.Errorf("off policy counted faults: %+v", rep)
	}
	if &out[1][0] != &in[1][0] {
		t.Error("off policy copied data")
	}
}

func TestRejectCountsAndRefuses(t *testing.T) {
	g := New(Reject, 3)
	_, rep, err := g.Sanitize(dirtyBatch())
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	if rep.NaNs != 1 || rep.Infs != 2 || rep.Rows != 2 {
		t.Errorf("report = %+v", rep)
	}
	// Clean batches pass and feed the running means.
	out, rep, err := g.Sanitize([][]float64{{1, 2, 3}})
	if err != nil || rep.Total() != 0 {
		t.Fatalf("clean batch: %v %+v", err, rep)
	}
	if len(out) != 1 {
		t.Fatal("clean batch mangled")
	}
}

func TestClampRepairsWithoutMutatingInput(t *testing.T) {
	g := New(Clamp, 3)
	in := dirtyBatch()
	out, rep, err := g.Sanitize(in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() != 3 {
		t.Errorf("report = %+v", rep)
	}
	if !math.IsNaN(in[1][0]) || !math.IsInf(in[1][2], 1) {
		t.Error("caller's batch was mutated")
	}
	if out[1][0] != 0 {
		t.Errorf("NaN clamped to %v, want 0", out[1][0])
	}
	if out[1][2] != DefaultClampLimit || out[2][1] != -DefaultClampLimit {
		t.Errorf("Inf clamped to %v / %v", out[1][2], out[2][1])
	}
	// Untouched rows are shared, repaired rows are private.
	if &out[0][0] != &in[0][0] {
		t.Error("clean row was copied")
	}
	for _, row := range out {
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite value survived clamp")
			}
		}
	}
}

func TestImputeUsesRunningMeans(t *testing.T) {
	g := New(Impute, 2)
	// Seed the means with two clean batches: feature 0 mean 2, feature 1 mean 10.
	for i := 0; i < 2; i++ {
		if _, _, err := g.Sanitize([][]float64{{1, 10}, {3, 10}}); err != nil {
			t.Fatal(err)
		}
	}
	out, rep, err := g.Sanitize([][]float64{{math.NaN(), math.Inf(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() != 2 {
		t.Errorf("report = %+v", rep)
	}
	if out[0][0] != 2 || out[0][1] != 10 {
		t.Errorf("imputed %v, want [2 10]", out[0])
	}
	// Imputed values must not drift the running means.
	means := g.FeatureMeans()
	if means[0] != 2 || means[1] != 10 {
		t.Errorf("means polluted by imputed values: %v", means)
	}
}

func TestImputeBeforeAnyFiniteValueFallsBackToZero(t *testing.T) {
	g := New(Impute, 1)
	out, _, err := g.Sanitize([][]float64{{math.NaN()}})
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 0 {
		t.Errorf("cold impute = %v, want 0", out[0][0])
	}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{"": Reject, "reject": Reject, "clamp": Clamp, "impute": Impute, "off": Off}
	for s, want := range cases {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}
