package faults

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"freewayml/internal/knowledge"
)

func TestInjectNaNAndInf(t *testing.T) {
	x := [][]float64{{1, 2, 3}, {4, 5, 6}}
	if n := InjectNaN(x, 2); n != 3 {
		t.Errorf("InjectNaN = %d, want 3", n)
	}
	if !math.IsNaN(x[0][0]) || !math.IsNaN(x[0][2]) || !math.IsNaN(x[1][1]) {
		t.Errorf("wrong positions: %v", x)
	}
	y := [][]float64{{1, 2}}
	InjectInf(y, 1, -1)
	if !math.IsInf(y[0][0], -1) || !math.IsInf(y[0][1], -1) {
		t.Errorf("InjectInf: %v", y)
	}
}

func TestRagged(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	out := Ragged(x)
	if len(out[1]) != 1 {
		t.Errorf("middle row len = %d, want 1", len(out[1]))
	}
	if len(x[1]) != 2 {
		t.Error("input mutated")
	}
}

func TestTruncatedAndFlipBit(t *testing.T) {
	data := []byte{0xFF, 0x00, 0xAA, 0x55}
	if got := Truncated(data, 0.5); len(got) != 2 {
		t.Errorf("Truncated = %d bytes, want 2", len(got))
	}
	flipped := FlipBit(data, 9) // second byte, bit 1
	if bytes.Equal(flipped, data) {
		t.Error("no bit flipped")
	}
	if flipped[1] != 0x02 {
		t.Errorf("flipped[1] = %#x, want 0x02", flipped[1])
	}
	if data[1] != 0x00 {
		t.Error("input mutated")
	}
}

func TestFailingFSSchedule(t *testing.T) {
	dir := t.TempDir()
	fs := NewFailingFS(knowledge.OSFS{})
	fs.FailWritesAfter = 1 // first write succeeds, rest fail

	ok := filepath.Join(dir, "a")
	if err := fs.WriteFile(ok, []byte("x"), 0o644); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if err := fs.WriteFile(filepath.Join(dir, "b"), []byte("x"), 0o644); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write err = %v, want ErrInjected", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "b")); !os.IsNotExist(err) {
		t.Error("failed write left a file behind")
	}
	if fs.Writes() != 2 {
		t.Errorf("Writes() = %d", fs.Writes())
	}

	fs.FailReadsAfter = 0
	if _, err := fs.ReadFile(ok); !errors.Is(err, ErrInjected) {
		t.Error("armed read did not fail")
	}
}
