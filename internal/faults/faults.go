// Package faults is the fault-injection harness behind FreewayML's
// robustness tests. It produces the corruptions real streams and real
// disks actually deliver — NaN/Inf feature values, ragged batches,
// truncated and bit-flipped checkpoint files, and a filesystem that fails
// on schedule — so the guard, the divergence watchdog, and the crash-safe
// persistence layer can each be demonstrated against the fault they exist
// for. Everything here is deterministic: the same injection call always
// corrupts the same positions.
package faults

import (
	"errors"
	"math"
	"os"
	"sync"

	"freewayml/internal/knowledge"
)

// InjectNaN overwrites every stride-th feature value with NaN, starting at
// the first, and returns how many values were replaced. The input is
// mutated in place (tests own their batches).
func InjectNaN(x [][]float64, stride int) int {
	return inject(x, stride, math.NaN())
}

// InjectInf overwrites every stride-th feature value with +Inf (sign >= 0)
// or -Inf and returns how many values were replaced.
func InjectInf(x [][]float64, stride int, sign int) int {
	v := math.Inf(1)
	if sign < 0 {
		v = math.Inf(-1)
	}
	return inject(x, stride, v)
}

func inject(x [][]float64, stride int, v float64) int {
	if stride < 1 {
		stride = 1
	}
	n, k := 0, 0
	for i := range x {
		for j := range x[i] {
			if k%stride == 0 {
				x[i][j] = v
				n++
			}
			k++
		}
	}
	return n
}

// Ragged returns a copy of the batch with the middle row truncated by one
// element — the classic partially-delivered record.
func Ragged(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	copy(out, x)
	if len(out) > 0 {
		mid := len(out) / 2
		row := out[mid]
		if len(row) > 0 {
			out[mid] = append([]float64(nil), row[:len(row)-1]...)
		}
	}
	return out
}

// Truncated returns the first frac of the data (a crash mid-write).
func Truncated(data []byte, frac float64) []byte {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(float64(len(data)) * frac)
	return append([]byte(nil), data[:n]...)
}

// FlipBit returns a copy of data with one bit inverted (bit rot). The bit
// index wraps, so any non-negative value is valid for non-empty data.
func FlipBit(data []byte, bit int) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 {
		return out
	}
	bit %= len(out) * 8
	if bit < 0 {
		bit += len(out) * 8
	}
	out[bit/8] ^= 1 << (bit % 8)
	return out
}

// ErrInjected is the error every scheduled FailingFS fault returns.
var ErrInjected = errors.New("faults: injected I/O failure")

// FailingFS wraps a knowledge.FS and fails operations on schedule. The
// zero schedule never fails; a knob of n >= 0 makes the n-th and every
// later call of that kind fail (0 = all fail).
type FailingFS struct {
	// Inner is the real filesystem; nil means knowledge.OSFS.
	Inner knowledge.FS
	// FailWritesAfter / FailReadsAfter / FailRenamesAfter arm the
	// respective operation: calls numbered >= the value (0-based) fail
	// with ErrInjected. Negative (the zero value is made negative by
	// NewFailingFS) disarms.
	FailWritesAfter  int
	FailReadsAfter   int
	FailRenamesAfter int

	mu      sync.Mutex
	writes  int
	reads   int
	renames int
}

// NewFailingFS returns a FailingFS over inner with every fault disarmed.
func NewFailingFS(inner knowledge.FS) *FailingFS {
	if inner == nil {
		inner = knowledge.OSFS{}
	}
	return &FailingFS{Inner: inner, FailWritesAfter: -1, FailReadsAfter: -1, FailRenamesAfter: -1}
}

// Writes returns how many WriteFile calls were attempted.
func (f *FailingFS) Writes() int { f.mu.Lock(); defer f.mu.Unlock(); return f.writes }

// Reads returns how many ReadFile calls were attempted.
func (f *FailingFS) Reads() int { f.mu.Lock(); defer f.mu.Unlock(); return f.reads }

// MkdirAll never fails (directory creation happens at construction time,
// before any scheduled fault is interesting).
func (f *FailingFS) MkdirAll(path string, perm os.FileMode) error {
	return f.Inner.MkdirAll(path, perm)
}

// WriteFile fails according to FailWritesAfter.
func (f *FailingFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	f.mu.Lock()
	n := f.writes
	f.writes++
	armed := f.FailWritesAfter
	f.mu.Unlock()
	if armed >= 0 && n >= armed {
		return ErrInjected
	}
	return f.Inner.WriteFile(name, data, perm)
}

// ReadFile fails according to FailReadsAfter.
func (f *FailingFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	n := f.reads
	f.reads++
	armed := f.FailReadsAfter
	f.mu.Unlock()
	if armed >= 0 && n >= armed {
		return nil, ErrInjected
	}
	return f.Inner.ReadFile(name)
}

// Rename fails according to FailRenamesAfter.
func (f *FailingFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	n := f.renames
	f.renames++
	armed := f.FailRenamesAfter
	f.mu.Unlock()
	if armed >= 0 && n >= armed {
		return ErrInjected
	}
	return f.Inner.Rename(oldpath, newpath)
}

// Remove delegates unconditionally (removal failures are not a modeled
// fault; the store already tolerates stale spill files).
func (f *FailingFS) Remove(name string) error { return f.Inner.Remove(name) }
