package faults

import (
	"fmt"
	"net/http"
	"sync"
	"time"
)

// ErrPartitioned is the error a ChaosTransport returns for a request into a
// partition, and ErrDropped for a scheduled connection drop — distinct from
// ErrInjected so tests can assert which fault fired.
var (
	ErrPartitioned = fmt.Errorf("faults: network partition")
	ErrDropped     = fmt.Errorf("faults: connection dropped")
)

// ChaosTransport wraps an http.RoundTripper and injects network faults per
// target host, deterministically: faults are scheduled against each host's
// own request counter (the n-th call fails, not "some call eventually"), so
// a test replays the exact same fault sequence every run. It models the
// failures a router actually meets — connections dropped for a scheduled
// window, added latency, and full partitions (every call fails until the
// partition heals) — without needing to kill real processes.
//
// Safe for concurrent use; the per-host counter is advanced under the lock,
// the wrapped round trip runs outside it.
type ChaosTransport struct {
	// Inner performs real round trips; nil means http.DefaultTransport.
	Inner http.RoundTripper

	mu    sync.Mutex
	hosts map[string]*hostChaos
}

// hostChaos is the fault schedule for one target host.
type hostChaos struct {
	calls       int
	partitioned bool
	dropFrom    int // calls in [dropFrom, dropTo) fail; dropFrom < 0 disarms
	dropTo      int
	latency     time.Duration
}

// NewChaosTransport wraps inner (nil = http.DefaultTransport) with no
// faults armed.
func NewChaosTransport(inner http.RoundTripper) *ChaosTransport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &ChaosTransport{Inner: inner, hosts: map[string]*hostChaos{}}
}

func (c *ChaosTransport) host(host string) *hostChaos {
	h, ok := c.hosts[host]
	if !ok {
		h = &hostChaos{dropFrom: -1}
		c.hosts[host] = h
	}
	return h
}

// Partition makes every request to host fail with ErrPartitioned until
// Heal. This is the in-process stand-in for a killed worker: connections
// fail immediately, state on the "dead" side is preserved for a restart.
func (c *ChaosTransport) Partition(host string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.host(host).partitioned = true
}

// Heal lifts a partition.
func (c *ChaosTransport) Heal(host string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.host(host).partitioned = false
}

// DropCalls fails host's request numbers in [from, to) (0-based, counted
// per host) with ErrDropped — a deterministic transient-failure window.
func (c *ChaosTransport) DropCalls(host string, from, to int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.host(host)
	h.dropFrom, h.dropTo = from, to
}

// AddLatency delays every request to host by d before it is sent.
func (c *ChaosTransport) AddLatency(host string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.host(host).latency = d
}

// Calls returns how many requests were attempted against host (including
// ones that failed by schedule).
func (c *ChaosTransport) Calls(host string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.host(host).calls
}

// RoundTrip applies the host's schedule, then delegates to Inner.
func (c *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	c.mu.Lock()
	h := c.host(req.URL.Host)
	n := h.calls
	h.calls++
	partitioned := h.partitioned
	dropped := h.dropFrom >= 0 && n >= h.dropFrom && n < h.dropTo
	latency := h.latency
	c.mu.Unlock()

	if partitioned {
		return nil, fmt.Errorf("%w: %s", ErrPartitioned, req.URL.Host)
	}
	if dropped {
		return nil, fmt.Errorf("%w: %s call %d", ErrDropped, req.URL.Host, n)
	}
	if latency > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(latency):
		}
	}
	return c.Inner.RoundTrip(req)
}
