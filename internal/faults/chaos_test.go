package faults

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func chaosTarget(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	t.Cleanup(ts.Close)
	return ts, strings.TrimPrefix(ts.URL, "http://")
}

func TestChaosPartitionAndHeal(t *testing.T) {
	ts, host := chaosTarget(t)
	ct := NewChaosTransport(nil)
	client := &http.Client{Transport: ct}

	if _, err := client.Get(ts.URL); err != nil {
		t.Fatalf("pre-partition request failed: %v", err)
	}
	ct.Partition(host)
	_, err := client.Get(ts.URL)
	if !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned request returned %v, want ErrPartitioned", err)
	}
	ct.Heal(host)
	if _, err := client.Get(ts.URL); err != nil {
		t.Fatalf("post-heal request failed: %v", err)
	}
}

func TestChaosDropWindowIsDeterministic(t *testing.T) {
	ts, host := chaosTarget(t)
	ct := NewChaosTransport(nil)
	client := &http.Client{Transport: ct}

	// Calls 1 and 2 (0-based) fail; 0 and 3+ succeed — exactly, every run.
	ct.DropCalls(host, 1, 3)
	for i := 0; i < 5; i++ {
		resp, err := client.Get(ts.URL)
		wantDrop := i == 1 || i == 2
		if wantDrop {
			if !errors.Is(err, ErrDropped) {
				t.Fatalf("call %d: got %v, want ErrDropped", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("call %d: unexpected error %v", i, err)
		}
		resp.Body.Close()
	}
	if got := ct.Calls(host); got != 5 {
		t.Fatalf("Calls(%s) = %d, want 5 (dropped calls count too)", host, got)
	}
}

func TestChaosFaultsArePerHost(t *testing.T) {
	tsA, hostA := chaosTarget(t)
	tsB, _ := chaosTarget(t)
	ct := NewChaosTransport(nil)
	client := &http.Client{Transport: ct}

	ct.Partition(hostA)
	if _, err := client.Get(tsA.URL); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("host A: got %v, want ErrPartitioned", err)
	}
	resp, err := client.Get(tsB.URL)
	if err != nil {
		t.Fatalf("host B caught host A's partition: %v", err)
	}
	resp.Body.Close()
}

func TestChaosLatencyRespectsContext(t *testing.T) {
	ts, host := chaosTarget(t)
	ct := NewChaosTransport(nil)
	ct.AddLatency(host, 10*time.Second)
	client := &http.Client{Transport: ct, Timeout: 50 * time.Millisecond}

	start := time.Now()
	_, err := client.Get(ts.URL)
	if err == nil {
		t.Fatal("expected timeout through injected latency")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("latency injection ignored the request context (took %v)", elapsed)
	}
}
