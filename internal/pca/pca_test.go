package pca

import (
	"math"
	"math/rand"
	"testing"

	"freewayml/internal/linalg"
)

func gaussianCloud(rng *rand.Rand, n, d int, scale []float64) []linalg.Vector {
	pts := make([]linalg.Vector, n)
	for i := range pts {
		pts[i] = linalg.NewVector(d)
		for j := 0; j < d; j++ {
			pts[i][j] = rng.NormFloat64() * scale[j]
		}
	}
	return pts
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, 1); err == nil {
		t.Error("empty input should error")
	}
	pts := []linalg.Vector{{1, 2}, {3, 4}}
	if _, err := Fit(pts, 0); err == nil {
		t.Error("outDim 0 should error")
	}
	if _, err := Fit(pts, 3); err == nil {
		t.Error("outDim > inputDim should error")
	}
}

func TestFitRecoversDominantDirection(t *testing.T) {
	// Data with variance 100 along x, 1 along y: first component ≈ e_x.
	rng := rand.New(rand.NewSource(42))
	pts := gaussianCloud(rng, 500, 2, []float64{10, 1})
	m, err := Fit(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Project the unit x direction relative to the data mean; movement along
	// x must map to a large coordinate, movement along y to a small one.
	mean, _ := linalg.Mean(pts)
	px, _ := m.ProjectMean(mean.Add(linalg.Vector{1, 0}))
	py, _ := m.ProjectMean(mean.Add(linalg.Vector{0, 1}))
	if math.Abs(px[0]) < 0.9 {
		t.Errorf("x step projected to %v, want |.|≈1", px[0])
	}
	if math.Abs(py[0]) > 0.3 {
		t.Errorf("y step projected to %v, want ≈0", py[0])
	}
}

func TestProjectionCentersTrainingMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := gaussianCloud(rng, 200, 3, []float64{1, 2, 3})
	m, err := Fit(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	mean, _ := linalg.Mean(pts)
	y, err := m.ProjectMean(mean)
	if err != nil {
		t.Fatal(err)
	}
	if y.Norm() > 1e-9 {
		t.Errorf("training mean should project to origin, got %v", y)
	}
}

func TestProjectDimensionMismatch(t *testing.T) {
	pts := []linalg.Vector{{1, 2}, {2, 1}, {0, 0}}
	m, err := Fit(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Project(linalg.Vector{1, 2, 3}); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestProjectBatch(t *testing.T) {
	pts := []linalg.Vector{{1, 0}, {-1, 0}, {0, 0.1}, {0, -0.1}}
	m, err := Fit(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.ProjectBatch(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(pts) {
		t.Fatalf("len = %d", len(out))
	}
	if _, err := m.ProjectBatch([]linalg.Vector{{1}}); err == nil {
		t.Error("mismatched batch should error")
	}
}

func TestProjectionPreservesDistancesFullRank(t *testing.T) {
	// With outDim == inputDim, PCA is a rotation: pairwise distances are
	// preserved exactly.
	rng := rand.New(rand.NewSource(9))
	pts := gaussianCloud(rng, 100, 4, []float64{1, 2, 3, 4})
	m, err := Fit(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := m.ProjectBatch(pts)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		i, j := rng.Intn(len(pts)), rng.Intn(len(pts))
		d0 := pts[i].Distance(pts[j])
		d1 := proj[i].Distance(proj[j])
		if math.Abs(d0-d1) > 1e-6*(1+d0) {
			t.Fatalf("distance not preserved: %v vs %v", d0, d1)
		}
	}
}

func TestExplainedVarianceRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := gaussianCloud(rng, 1000, 3, []float64{10, 1, 1})
	m1, _ := Fit(pts, 1)
	m3, _ := Fit(pts, 3)
	r1 := m1.ExplainedVarianceRatio()
	r3 := m3.ExplainedVarianceRatio()
	if r1 < 0.9 {
		t.Errorf("dominant component explains %v, want > 0.9", r1)
	}
	if math.Abs(r3-1) > 1e-9 {
		t.Errorf("full-rank explained ratio = %v, want 1", r3)
	}
	if m1.InputDim() != 3 || m1.OutputDim() != 1 {
		t.Errorf("dims = %d, %d", m1.InputDim(), m1.OutputDim())
	}
}

func TestConstantDataExplainedRatio(t *testing.T) {
	pts := []linalg.Vector{{1, 1}, {1, 1}, {1, 1}}
	m, err := Fit(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.ExplainedVarianceRatio() != 1 {
		t.Errorf("zero-variance data ratio = %v, want 1", m.ExplainedVarianceRatio())
	}
	y, err := m.ProjectMean(linalg.Vector{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y.Norm() > 1e-12 {
		t.Errorf("constant mean projects to %v", y)
	}
}
