// Package pca implements the Principal Component Analysis warm-up model of
// FreewayML (paper Eq. 2-5). The detector trains a PCA once on an initial
// sample of the stream, then projects every incoming batch's mean into the
// reduced space (Eq. 6) where shift distances are computed.
package pca

import (
	"errors"
	"fmt"

	"freewayml/internal/linalg"
)

// Model is a fitted PCA: the training mean μ and the component matrix P_d
// whose columns are the top-d eigenvectors of the training covariance.
type Model struct {
	mean       linalg.Vector  // μ from Eq. 2
	components *linalg.Matrix // P_d from Eq. 5: inputDim × outputDim, columns are eigenvectors
	explained  linalg.Vector  // eigenvalues of the retained components
	totalVar   float64        // sum of all eigenvalues
}

// Fit trains a PCA model on the n warm-up points, keeping outDim components
// (Eq. 2-5). It returns an error for empty input, inconsistent dimensions,
// or outDim outside [1, inputDim].
func Fit(points []linalg.Vector, outDim int) (*Model, error) {
	if len(points) == 0 {
		return nil, errors.New("pca: Fit requires at least one point")
	}
	inDim := len(points[0])
	if outDim < 1 || outDim > inDim {
		return nil, fmt.Errorf("pca: outDim %d outside [1, %d]", outDim, inDim)
	}
	mean, err := linalg.Mean(points)
	if err != nil {
		return nil, err
	}
	cov, err := linalg.Covariance(points, mean)
	if err != nil {
		return nil, err
	}
	eig, err := linalg.SymmetricEigen(cov)
	if err != nil {
		return nil, err
	}
	comp := linalg.NewMatrix(inDim, outDim)
	explained := linalg.NewVector(outDim)
	var total float64
	for _, v := range eig.Values {
		if v > 0 {
			total += v
		}
	}
	for k := 0; k < outDim; k++ {
		explained[k] = eig.Values[k]
		for i := 0; i < inDim; i++ {
			comp.Set(i, k, eig.Vectors.At(i, k))
		}
	}
	return &Model{mean: mean, components: comp, explained: explained, totalVar: total}, nil
}

// InputDim returns the dimensionality the model was fitted on.
func (m *Model) InputDim() int { return m.components.Rows }

// OutputDim returns the number of retained components.
func (m *Model) OutputDim() int { return m.components.Cols }

// ExplainedVarianceRatio returns the fraction of total training variance
// captured by the retained components (1 if the training variance was zero).
func (m *Model) ExplainedVarianceRatio() float64 {
	if m.totalVar <= 0 {
		return 1
	}
	var s float64
	for _, v := range m.explained {
		if v > 0 {
			s += v
		}
	}
	return s / m.totalVar
}

// Project maps a single point into the reduced space: P_dᵀ(x − μ).
func (m *Model) Project(x linalg.Vector) (linalg.Vector, error) {
	if len(x) != m.InputDim() {
		return nil, fmt.Errorf("pca: point dim %d, model dim %d", len(x), m.InputDim())
	}
	return m.components.TMulVec(x.Sub(m.mean)), nil
}

// ProjectMean implements Eq. 6: given the mean μ_t of a batch, it returns
// ȳ_t = P_dᵀ(μ_t − μ), the batch's representation in the reduced space.
func (m *Model) ProjectMean(batchMean linalg.Vector) (linalg.Vector, error) {
	return m.Project(batchMean)
}

// ProjectBatch projects every point of a batch. Used by the coherent
// experience clustering path, which clusters in the reduced space. The whole
// batch is centered into one flat tensor and projected with a single GEMM
// (summing over input dims in the same order as Project); the returned rows
// alias one backing allocation.
func (m *Model) ProjectBatch(points []linalg.Vector) ([]linalg.Vector, error) {
	inDim, outDim := m.InputDim(), m.OutputDim()
	xc := linalg.NewTensor(len(points), inDim)
	for i, p := range points {
		if len(p) != inDim {
			return nil, fmt.Errorf("pca: point dim %d, model dim %d", len(p), inDim)
		}
		row := xc.Row(i)
		for j, v := range p {
			row[j] = v - m.mean[j]
		}
	}
	y := linalg.NewTensor(len(points), outDim)
	linalg.Gemm(y, xc, linalg.TensorView(m.components.Data, inDim, outDim))
	out := make([]linalg.Vector, len(points))
	for i := range out {
		out[i] = linalg.Vector(y.Row(i))
	}
	return out, nil
}
