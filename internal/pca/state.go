package pca

import (
	"errors"

	"freewayml/internal/linalg"
)

// State is the serializable form of a fitted Model (all fields exported for
// encoding/gob).
type State struct {
	Mean      linalg.Vector
	Rows      int
	Cols      int
	Data      []float64
	Explained linalg.Vector
	TotalVar  float64
}

// State exports the fitted model.
func (m *Model) State() State {
	return State{
		Mean:      m.mean.Clone(),
		Rows:      m.components.Rows,
		Cols:      m.components.Cols,
		Data:      append([]float64(nil), m.components.Data...),
		Explained: m.explained.Clone(),
		TotalVar:  m.totalVar,
	}
}

// FromState reconstructs a Model from an exported State.
func FromState(s State) (*Model, error) {
	if s.Rows < 1 || s.Cols < 1 || len(s.Data) != s.Rows*s.Cols {
		return nil, errors.New("pca: invalid state shape")
	}
	if len(s.Mean) != s.Rows {
		return nil, errors.New("pca: state mean length mismatch")
	}
	comp := linalg.NewMatrix(s.Rows, s.Cols)
	copy(comp.Data, s.Data)
	return &Model{
		mean:       s.Mean.Clone(),
		components: comp,
		explained:  s.Explained.Clone(),
		totalVar:   s.TotalVar,
	}, nil
}
