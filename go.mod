module freewayml

go 1.22
