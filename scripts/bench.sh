#!/usr/bin/env bash
# Runs the PR 2 benchmark gate — the nn kernel benchmarks plus the
# end-to-end Figure 10 throughput bench — and records the results as
# BENCH_PR2.json next to the pinned pre-PR baseline, so a later change that
# regresses the compute core shows up as a diff in the JSON.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_PR2.json}
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

echo "== nn kernel benchmarks" >&2
go test ./internal/nn -run '^$' \
  -bench '^(BenchmarkMLPForward|BenchmarkMLPTrainBatch|BenchmarkConvForward)$' \
  -benchmem -benchtime 2s | tee -a "$TMP" >&2

echo "== end-to-end throughput (Figure 10)" >&2
go test . -run '^$' -bench '^BenchmarkFigure10Throughput$' -benchtime 1x | tee -a "$TMP" >&2

# The PR 5 concurrent-serving gate writes its own BENCH_PR5.json (session
# manager shards=1 vs shards=8 plus a closed-loop loadgen run).
scripts/bench_serve.sh

awk -v go_version="$(go version | awk '{print $3}')" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)     # strip the -GOMAXPROCS suffix when present
    if (!(name in entry)) names[++count] = name
    fields = ""
    for (i = 2; i < NF; i++) {
      key = ""
      if ($(i+1) == "ns/op") key = "ns_per_op"
      else if ($(i+1) == "B/op") key = "bytes_per_op"
      else if ($(i+1) == "allocs/op") key = "allocs_per_op"
      else if ($(i+1) ~ /^samples\/s/) key = "samples_per_s"
      if (key != "") {
        if (fields != "") fields = fields ", "
        fields = fields "\"" key "\": " $i
      }
    }
    entry[name] = fields
  }
  END {
    printf "{\n"
    printf "  \"go\": \"%s\",\n", go_version
    printf "  \"baseline_pre_pr2\": {\n"
    printf "    \"comment\": \"measured at the pre-PR2 [][]float64 compute core, GOMAXPROCS=1\",\n"
    printf "    \"BenchmarkMLPForward\": {\"ns_per_op\": 410214, \"allocs_per_op\": 771},\n"
    printf "    \"BenchmarkMLPTrainBatch\": {\"ns_per_op\": 842240, \"allocs_per_op\": 2059},\n"
    printf "    \"BenchmarkConvForward\": {\"ns_per_op\": 2805219, \"allocs_per_op\": 325}\n"
    printf "  },\n"
    printf "  \"benchmarks\": {\n"
    for (i = 1; i <= count; i++) {
      name = names[i]
      printf "    \"%s\": {%s}%s\n", name, entry[name], (i < count ? "," : "")
    }
    printf "  }\n}\n"
  }' "$TMP" > "$OUT"
echo "wrote $OUT" >&2
