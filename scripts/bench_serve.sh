#!/usr/bin/env bash
# Runs the PR 5 concurrent-serving gate and records BENCH_PR5.json:
#
#   1. BenchmarkManagerParallelProcess at GOMAXPROCS=8 — the single-lock
#      session map (shards=1, the pre-stripe baseline) against the striped
#      map (shards=8), on a resident workload and an eviction-churn
#      workload. The churn ratio is the gate.
#   2. A short closed-loop freeway-loadgen run against a freshly built
#      freeway-serve, folding end-to-end throughput and p50/p95/p99 into
#      the same JSON.
#
# Gate policy: the stripes' win is overlap — evictions' checkpoint I/O and
# each other's shard work. That needs real parallelism, so the required
# churn ratio adapts to the host: >= 3.0 on a >= 4-CPU host, else (single-
# core CI boxes physically serialize all CPU work) >= 0.85, i.e. striping
# must at least not regress. The ratio and the policy applied are both
# recorded in the JSON.
#
# Usage: scripts/bench_serve.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_PR5.json}
TMP=$(mktemp)
LOADGEN_JSON=$(mktemp)
trap 'rm -f "$TMP" "$LOADGEN_JSON"' EXIT

NCPU=$(nproc 2>/dev/null || echo 1)

echo "== session manager parallel benchmarks (GOMAXPROCS=8)" >&2
go test ./internal/session -run '^$' \
  -bench '^BenchmarkManagerParallelProcess$' \
  -benchtime 2s -cpu 8 | tee "$TMP" >&2

echo "== closed-loop serve benchmark (freeway-loadgen)" >&2
mkdir -p bin
go build -o bin/freeway-serve ./cmd/freeway-serve
go build -o bin/freeway-loadgen ./cmd/freeway-loadgen
./bin/freeway-loadgen -serve bin/freeway-serve \
  -streams 8 -concurrency 8 -batch 32 -duration 5s -out "$LOADGEN_JSON" >&2

awk -v go_version="$(go version | awk '{print $3}')" \
    -v ncpu="$NCPU" -v loadgen_json="$LOADGEN_JSON" '
  /^BenchmarkManagerParallelProcess/ {
    name = $1
    sub(/^BenchmarkManagerParallelProcess\//, "", name)
    sub(/-[0-9]+$/, "", name)
    for (i = 2; i < NF; i++) {
      if ($(i+1) ~ /^batches\/s/) rate[name] = $i
    }
  }
  END {
    r1 = rate["churn/shards=1"]; r8 = rate["churn/shards=8"]
    ratio = (r1 > 0) ? r8 / r1 : 0
    need = (ncpu >= 4) ? 3.0 : 0.85
    policy = (ncpu >= 4) ? "multi-core: striped must be >= 3x single-lock" : "single-core host: striped must not regress (>= 0.85x)"
    pass = (ratio >= need) ? "true" : "false"
    printf "{\n"
    printf "  \"go\": \"%s\",\n", go_version
    printf "  \"ncpu\": %d,\n", ncpu
    printf "  \"manager_parallel_process\": {\n"
    printf "    \"comment\": \"hot-stream batches/s at GOMAXPROCS=8; shards=1 is the single-mutex baseline\",\n"
    printf "    \"resident_shards1_batches_per_s\": %.0f,\n", rate["resident/shards=1"]
    printf "    \"resident_shards8_batches_per_s\": %.0f,\n", rate["resident/shards=8"]
    printf "    \"churn_shards1_batches_per_s\": %.0f,\n", rate["churn/shards=1"]
    printf "    \"churn_shards8_batches_per_s\": %.0f,\n", rate["churn/shards=8"]
    printf "    \"churn_speedup\": %.2f,\n", ratio
    printf "    \"gate\": \"%s\",\n", policy
    printf "    \"gate_pass\": %s\n", pass
    printf "  },\n"
    printf "  \"loadgen_closed_loop\": "
    while ((getline line < loadgen_json) > 0) {
      if (line == "{") printf "{\n"
      else if (line == "}") printf "  }\n"
      else printf "  %s\n", line
    }
    printf "}\n"
    exit (pass == "true") ? 0 : 1
  }' "$TMP" > "$OUT" || { echo "bench-serve gate FAILED (see $OUT)" >&2; exit 1; }
echo "wrote $OUT" >&2
