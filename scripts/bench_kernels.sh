#!/usr/bin/env bash
# Runs the PR 10 kernel-tier gate and records BENCH_PR10.json:
#
# Single-core (-cpu 1) microbenchmarks of the three kernel tiers at the
# coalesced forward-pass shape (256x256x256):
#
#   1. Gemm64Forward  — the f64 oracle kernel (training plane, unchanged)
#   2. Gemm32Forward  — the f32 speed-tier kernel (half the memory traffic)
#   3. GemmQ8Forward  — the int8-infer kernel (quantized weights, int32
#                       accumulate, f32 dequant)
#
# plus the compiled nn inference engines (f64 network forward vs f32 engine
# vs int8 engine on a 64x64->128->4 MLP), so the gate measures the path the
# snapshot plane actually serves, not just the raw GEMM.
#
# Gate policy (host-adaptive, same shape as the PR5/PR7/PR9 gates): runs are
# pinned to one core so the ratio isolates kernel arithmetic + memory
# traffic from parallel speedup. On a >= 4-CPU host the f32 GEMM must reach
# >= 2x the f64 GEMM; on smaller hosts (shared single-core CI boxes are too
# noisy to hold a 2x bar) it must not regress — >= 0.85x — and the JSON
# clearly flags which policy applied. The int8 tier is reported but not
# hard-gated: its win is weight-memory footprint, not single-pass latency.
#
# Usage: scripts/bench_kernels.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_PR10.json}
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

NCPU=$(nproc 2>/dev/null || echo 1)
BT=${BENCH_KERNELS_BENCHTIME:-2s}

echo "== f32/int8 kernel-tier benchmarks (single core)" >&2
go test ./internal/linalg -run '^$' \
  -bench '^(BenchmarkGemm64Forward|BenchmarkGemm32Forward|BenchmarkGemmQ8Forward)$' \
  -benchmem -benchtime "$BT" -cpu 1 | tee -a "$TMP" >&2

echo "== compiled inference-engine benchmarks (single core)" >&2
go test ./internal/nn -run '^$' \
  -bench '^(BenchmarkInferNetworkF64MLP|BenchmarkInferEngineF32MLP|BenchmarkInferEngineInt8MLP)$' \
  -benchmem -benchtime "$BT" -cpu 1 | tee -a "$TMP" >&2

awk -v go_version="$(go version | awk '{print $3}')" -v ncpu="$NCPU" '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)     # strip the -GOMAXPROCS suffix when present
    if (!(name in ns)) names[++count] = name
    fields = ""
    for (i = 2; i < NF; i++) {
      key = ""
      if ($(i+1) == "ns/op") { key = "ns_per_op"; ns[name] = $i }
      else if ($(i+1) == "MB/s") key = "mb_per_s"
      else if ($(i+1) == "B/op") key = "bytes_per_op"
      else if ($(i+1) == "allocs/op") key = "allocs_per_op"
      if (key != "") {
        if (fields != "") fields = fields ", "
        fields = fields "\"" key "\": " $i
      }
    }
    entry[name] = fields
  }
  END {
    f64 = ns["BenchmarkGemm64Forward"] + 0
    f32 = ns["BenchmarkGemm32Forward"] + 0
    q8  = ns["BenchmarkGemmQ8Forward"] + 0
    e64 = ns["BenchmarkInferNetworkF64MLP"] + 0
    e32 = ns["BenchmarkInferEngineF32MLP"] + 0
    e8  = ns["BenchmarkInferEngineInt8MLP"] + 0
    gemm_ratio = (f32 > 0) ? f64 / f32 : 0
    q8_ratio   = (q8 > 0) ? f64 / q8 : 0
    eng_ratio  = (e32 > 0) ? e64 / e32 : 0
    eng8_ratio = (e8 > 0) ? e64 / e8 : 0
    need = (ncpu >= 4) ? 2.0 : 0.85
    policy = (ncpu >= 4) \
      ? "multi-core host: single-core f32 GEMM must reach >= 2x the f64 oracle" \
      : "single-core host: noisy shared box, f32 GEMM must not regress (>= 0.85x the f64 oracle)"
    pass = (gemm_ratio >= need) ? "true" : "false"
    printf "{\n"
    printf "  \"go\": \"%s\",\n", go_version
    printf "  \"ncpu\": %d,\n", ncpu
    printf "  \"kernel_tiers\": {\n"
    printf "    \"comment\": \"256x256x256 coalesced-forward GEMM shape and a 64-row 64->128->4 MLP inference pass, all pinned to one core (-cpu 1); f64 is the training-plane oracle, f32/int8 are the opt-in inference tiers\",\n"
    printf "    \"gemm_f32_vs_f64\": %.2f,\n", gemm_ratio
    printf "    \"gemm_int8_vs_f64\": %.2f,\n", q8_ratio
    printf "    \"engine_f32_vs_f64\": %.2f,\n", eng_ratio
    printf "    \"engine_int8_vs_f64\": %.2f,\n", eng8_ratio
    printf "    \"gate\": \"%s\",\n", policy
    printf "    \"gate_pass\": %s\n", pass
    printf "  },\n"
    printf "  \"benchmarks\": {\n"
    for (i = 1; i <= count; i++) {
      name = names[i]
      printf "    \"%s\": {%s}%s\n", name, entry[name], (i < count ? "," : "")
    }
    printf "  },\n"
    printf "  \"gate_pass\": %s\n", pass
    printf "}\n"
    exit (pass == "true") ? 0 : 1
  }' "$TMP" > "$OUT" || { echo "bench-kernels gate FAILED (see $OUT)" >&2; exit 1; }
echo "wrote $OUT" >&2
