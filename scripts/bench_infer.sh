#!/usr/bin/env bash
# Runs the PR 9 inference-plane gate and records BENCH_PR9.json:
#
# Two short closed-loop freeway-loadgen runs against freshly built servers,
# both driving a read-heavy mix (90% of requests are label-less /infer
# reads, 10% labeled training batches, binary framing):
#
#   1. unfused — every infer request runs its own forward pass
#   2. fused   — -coalesce turns on the cross-stream inference coalescer:
#                concurrent label-less batches from MANY streams pack into
#                one slab and share one blocked-GEMM pass per member
#
# Gate policy (host-adaptive, same shape as the PR5/PR7 gates): the fused
# win is k concurrent forward passes collapsing into one, which needs real
# parallel submitters to show. On a >= 4-CPU host the fused run must reach
# >= 3x the unfused run's samples/s; on smaller hosts (single-core CI boxes
# physically serialize the submitters, so groups rarely form) it must not
# regress — >= 0.85x — and the JSON clearly flags which policy applied.
#
# Usage: scripts/bench_infer.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_PR9.json}
SOLO_RUN=$(mktemp)
FUSED_RUN=$(mktemp)
trap 'rm -f "$SOLO_RUN" "$FUSED_RUN"' EXIT

NCPU=$(nproc 2>/dev/null || echo 1)
DUR=${BENCH_INFER_DURATION:-5s}

echo "== closed-loop inference benchmarks (freeway-loadgen, 90% reads)" >&2
mkdir -p bin
go build -o bin/freeway-serve ./cmd/freeway-serve
go build -o bin/freeway-loadgen ./cmd/freeway-loadgen
# 4 streams, 16 workers: concurrency > streams so concurrent label-less
# batches actually pile up inside the coalescing window — and because the
# infer group is CROSS-stream, all 16 workers can land in one slab.
COMMON=(-serve bin/freeway-serve -streams 4 -concurrency 16 -batch 32 \
  -duration "$DUR" -proto binary -infer-frac 0.9)
./bin/freeway-loadgen "${COMMON[@]}" -out "$SOLO_RUN" >&2
./bin/freeway-loadgen "${COMMON[@]}" -coalesce -out "$FUSED_RUN" >&2

# Pull one numeric field out of a loadgen JSON summary.
field() { awk -F'[:,]' -v k="\"$2\"" '$1 ~ k {gsub(/[[:space:]]/, "", $2); print $2}' "$1"; }

SOLO_SPS=$(field "$SOLO_RUN" samples_per_s)
FUSED_SPS=$(field "$FUSED_RUN" samples_per_s)
SOLO_INFERS=$(field "$SOLO_RUN" infer_requests)
FUSED_INFERS=$(field "$FUSED_RUN" infer_requests)

awk -v go_version="$(go version | awk '{print $3}')" \
    -v ncpu="$NCPU" -v solo_sps="$SOLO_SPS" -v fused_sps="$FUSED_SPS" \
    -v solo_infers="${SOLO_INFERS:-0}" -v fused_infers="${FUSED_INFERS:-0}" \
    -v solo_run="$SOLO_RUN" -v fused_run="$FUSED_RUN" '
  function embed(file,  line) {
    while ((getline line < file) > 0) {
      if (line == "{") printf "{\n"
      else if (line == "}") printf "  }"
      else printf "  %s\n", line
    }
  }
  BEGIN {
    ratio = (solo_sps > 0) ? fused_sps / solo_sps : 0
    need = (ncpu >= 4) ? 3.0 : 0.85
    policy = (ncpu >= 4) ? "multi-core: fused cross-stream inference must reach >= 3x the unfused read path" : "single-core host: fused inference must not regress (>= 0.85x unfused)"
    pass = (ratio >= need) ? "true" : "false"
    printf "{\n"
    printf "  \"go\": \"%s\",\n", go_version
    printf "  \"ncpu\": %d,\n", ncpu
    printf "  \"infer_closed_loop\": {\n"
    printf "    \"comment\": \"4 streams x 16 workers x batch 32, binary framing, 90%% label-less /infer reads; fused run coalesces concurrent reads from ALL streams into one GEMM pass\",\n"
    printf "    \"unfused_samples_per_s\": %.0f,\n", solo_sps
    printf "    \"fused_samples_per_s\": %.0f,\n", fused_sps
    printf "    \"unfused_infer_requests\": %d,\n", solo_infers
    printf "    \"fused_infer_requests\": %d,\n", fused_infers
    printf "    \"fused_vs_unfused\": %.2f,\n", ratio
    printf "    \"gate\": \"%s\",\n", policy
    printf "    \"gate_pass\": %s,\n", pass
    printf "    \"unfused_run\": "; embed(solo_run); printf ",\n"
    printf "    \"fused_run\": "; embed(fused_run); printf "\n"
    printf "  },\n"
    printf "  \"gate_pass\": %s\n", pass
    printf "}\n"
    exit (pass == "true") ? 0 : 1
  }' > "$OUT" || { echo "bench-infer gate FAILED (see $OUT)" >&2; exit 1; }
echo "wrote $OUT" >&2
