#!/usr/bin/env bash
# Runs the PR 7 ingest gate and records BENCH_PR7.json:
#
#   1. internal/wire decode microbenchmarks — binary frame decode (f64 and
#      f32) against the encoding/json baseline on the same batch. Reports
#      ns/row and allocs/op; the hard gate is allocs/op == 0 for a warm
#      binary decode (the zero-copy contract).
#   2. Three short closed-loop freeway-loadgen runs against freshly built
#      servers: the JSON baseline, per-request binary ingest, and binary
#      ingest with batch coalescing (-concurrency > -streams so concurrent
#      batches actually fuse).
#
# Gate policy (PR5-style, host-adaptive): coalescing's win is one fused
# blocked-GEMM pass plus one detector pass instead of k, which needs real
# concurrency to show. On a >= 4-CPU host the coalesced run must reach
# >= 3x the JSON baseline's samples/s; on smaller hosts (single-core CI
# boxes physically serialize everything) it must not regress — >= 0.85x —
# and the JSON clearly flags which policy applied. The decode-alloc gate
# applies everywhere.
#
# Usage: scripts/bench_ingest.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_PR7.json}
TMP=$(mktemp)
JSON_RUN=$(mktemp)
BIN_RUN=$(mktemp)
COAL_RUN=$(mktemp)
trap 'rm -f "$TMP" "$JSON_RUN" "$BIN_RUN" "$COAL_RUN"' EXIT

NCPU=$(nproc 2>/dev/null || echo 1)
DUR=${BENCH_INGEST_DURATION:-5s}

echo "== wire decode microbenchmarks" >&2
go test ./internal/wire -run '^$' \
  -bench '^(BenchmarkDecode|BenchmarkDecodeJSONBaseline)$' \
  -benchmem -benchtime 1s | tee "$TMP" >&2

echo "== closed-loop ingest benchmarks (freeway-loadgen)" >&2
mkdir -p bin
go build -o bin/freeway-serve ./cmd/freeway-serve
go build -o bin/freeway-loadgen ./cmd/freeway-loadgen
# Same shape for all three runs: 4 streams, 16 workers (concurrency >
# streams, so under coalescing several workers pile onto each stream).
COMMON=(-serve bin/freeway-serve -streams 4 -concurrency 16 -batch 32 -duration "$DUR")
./bin/freeway-loadgen "${COMMON[@]}" -out "$JSON_RUN" >&2
./bin/freeway-loadgen "${COMMON[@]}" -proto binary -out "$BIN_RUN" >&2
./bin/freeway-loadgen "${COMMON[@]}" -proto binary -coalesce -out "$COAL_RUN" >&2

# Pull one numeric field out of a loadgen JSON summary.
field() { awk -F'[:,]' -v k="\"$2\"" '$1 ~ k {gsub(/[[:space:]]/, "", $2); print $2}' "$1"; }

JSON_SPS=$(field "$JSON_RUN" samples_per_s)
BIN_SPS=$(field "$BIN_RUN" samples_per_s)
COAL_SPS=$(field "$COAL_RUN" samples_per_s)

awk -v go_version="$(go version | awk '{print $3}')" \
    -v ncpu="$NCPU" -v json_sps="$JSON_SPS" -v bin_sps="$BIN_SPS" -v coal_sps="$COAL_SPS" \
    -v json_run="$JSON_RUN" -v bin_run="$BIN_RUN" -v coal_run="$COAL_RUN" '
  function embed(file,  line) {
    while ((getline line < file) > 0) {
      if (line == "{") printf "{\n"
      else if (line == "}") printf "  }"
      else printf "  %s\n", line
    }
  }
  /^BenchmarkDecode\// || /^BenchmarkDecodeJSONBaseline/ {
    name = $1
    sub(/^BenchmarkDecode\//, "", name)
    sub(/^BenchmarkDecodeJSONBaseline.*/, "json", name)
    sub(/-[0-9]+$/, "", name)
    for (i = 2; i < NF; i++) {
      if ($(i+1) == "ns/row") nsrow[name] = $i
      if ($(i+1) == "allocs/op") allocs[name] = $i
    }
  }
  END {
    alloc_pass = (allocs["f64"] == 0 && allocs["f32"] == 0) ? "true" : "false"
    ratio = (json_sps > 0) ? coal_sps / json_sps : 0
    need = (ncpu >= 4) ? 3.0 : 0.85
    policy = (ncpu >= 4) ? "multi-core: coalesced binary ingest must reach >= 3x the JSON baseline" : "single-core host: coalesced binary ingest must not regress (>= 0.85x JSON baseline)"
    tput_pass = (ratio >= need) ? "true" : "false"
    pass = (alloc_pass == "true" && tput_pass == "true") ? "true" : "false"
    printf "{\n"
    printf "  \"go\": \"%s\",\n", go_version
    printf "  \"ncpu\": %d,\n", ncpu
    printf "  \"wire_decode\": {\n"
    printf "    \"comment\": \"warm decode of one 32x6 labeled frame; json is the encoding/json baseline on the same batch\",\n"
    printf "    \"binary_f64_ns_per_row\": %.1f,\n", nsrow["f64"]
    printf "    \"binary_f32_ns_per_row\": %.1f,\n", nsrow["f32"]
    printf "    \"json_ns_per_row\": %.1f,\n", nsrow["json"]
    printf "    \"binary_f64_allocs_per_op\": %d,\n", allocs["f64"]
    printf "    \"binary_f32_allocs_per_op\": %d,\n", allocs["f32"]
    printf "    \"json_allocs_per_op\": %d,\n", allocs["json"]
    printf "    \"gate\": \"warm binary decode must not allocate\",\n"
    printf "    \"gate_pass\": %s\n", alloc_pass
    printf "  },\n"
    printf "  \"ingest_closed_loop\": {\n"
    printf "    \"comment\": \"4 streams x 16 workers x batch 32; coalesced run fuses concurrent batches per stream\",\n"
    printf "    \"json_samples_per_s\": %.0f,\n", json_sps
    printf "    \"binary_samples_per_s\": %.0f,\n", bin_sps
    printf "    \"coalesced_binary_samples_per_s\": %.0f,\n", coal_sps
    printf "    \"coalesced_vs_json\": %.2f,\n", ratio
    printf "    \"gate\": \"%s\",\n", policy
    printf "    \"gate_pass\": %s,\n", tput_pass
    printf "    \"json_run\": "; embed(json_run); printf ",\n"
    printf "    \"binary_run\": "; embed(bin_run); printf ",\n"
    printf "    \"coalesced_run\": "; embed(coal_run); printf "\n"
    printf "  },\n"
    printf "  \"gate_pass\": %s\n", pass
    printf "}\n"
    exit (pass == "true") ? 0 : 1
  }' "$TMP" > "$OUT" || { echo "bench-ingest gate FAILED (see $OUT)" >&2; exit 1; }
echo "wrote $OUT" >&2
