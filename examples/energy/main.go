// Energy example: electricity price movement prediction over an Elec2-style
// market stream with localized daily variation, sudden price shocks, and
// reoccurring market regimes — the power-scheduling scenario from the
// paper's introduction. The example also demonstrates the rate-aware
// posture: inference continues every batch while the long-granularity model
// updates asynchronously.
//
//	go run ./examples/energy
package main

import (
	"fmt"
	"log"

	"freewayml"
)

func main() {
	stream, err := freewayml.OpenDataset("Electricity", 128, 3)
	if err != nil {
		log.Fatal(err)
	}

	cfg := freewayml.DefaultConfig()
	cfg.Async = true // long-model updates must never block dispatch decisions
	learner, err := freewayml.New(cfg, stream.Dim(), stream.Classes())
	if err != nil {
		log.Fatal(err)
	}
	defer learner.Close()

	// Track how often each mechanism carried the prediction, and the
	// accuracy during sudden price shocks specifically.
	strategies := map[string]int{}
	var shockAcc float64
	shocks := 0
	for {
		batch, ok := stream.Next()
		if !ok {
			break
		}
		res, err := learner.ProcessBatch(batch.X, batch.Y)
		if err != nil {
			log.Fatal(err)
		}
		strategies[res.Strategy]++
		if batch.Drift == "sudden" {
			shocks++
			shockAcc += res.Accuracy
		}
	}

	stats := learner.Stats()
	fmt.Printf("price-direction accuracy (G_acc): %.2f%%  stability (SI): %.3f\n",
		100*stats.GAcc, stats.SI)
	if shocks > 0 {
		fmt.Printf("accuracy during %d price-shock batches: %.2f%%\n", shocks, 100*shockAcc/float64(shocks))
	}
	fmt.Println("mechanism usage:")
	for name, n := range strategies {
		fmt.Printf("  %-32s %4d batches\n", name, n)
	}
}
