// Network-security example: intrusion detection over an NSL-KDD-style
// traffic stream whose attack campaigns alternate over time. This is the
// scenario the paper highlights for reoccurring shifts (Pattern C): when an
// old attack pattern returns, historical knowledge reuse restores the model
// that already knew it instead of relearning from scratch.
//
//	go run ./examples/netsecurity
package main

import (
	"fmt"
	"log"

	"freewayml"
)

// classNames matches the simulated NSL-KDD's five traffic classes.
var classNames = [...]string{"normal", "dos", "probe", "r2l", "u2r"}

func main() {
	stream, err := freewayml.OpenDataset("NSL-KDD", 256, 7)
	if err != nil {
		log.Fatal(err)
	}

	cfg := freewayml.DefaultConfig()
	cfg.KdgBuffer = 40 // keep more attack-regime snapshots around
	learner, err := freewayml.New(cfg, stream.Dim(), stream.Classes())
	if err != nil {
		log.Fatal(err)
	}
	defer learner.Close()

	reuses := 0
	var reuseAcc float64
	alerts := 0
	for {
		batch, ok := stream.Next()
		if !ok {
			break
		}
		res, err := learner.ProcessBatch(batch.X, batch.Y)
		if err != nil {
			log.Fatal(err)
		}

		// Count alerting traffic (anything predicted non-normal).
		for _, p := range res.Predictions {
			if p != 0 {
				alerts++
			}
		}
		if res.Strategy == "knowledge-reuse" {
			reuses++
			reuseAcc += res.Accuracy
			fmt.Printf("reoccurring attack regime detected (shift %.2f): restored preserved model, accuracy %.1f%%\n",
				res.ShiftDistance, 100*res.Accuracy)
		}
	}

	stats := learner.Stats()
	fmt.Printf("\n%d batches, %d samples, %d alerts raised\n", stats.Batches, stats.Samples, alerts)
	fmt.Printf("G_acc %.2f%%, SI %.3f\n", 100*stats.GAcc, stats.SI)
	if reuses > 0 {
		fmt.Printf("knowledge reuse fired %d times, mean accuracy %.1f%% on those batches\n",
			reuses, 100*reuseAcc/float64(reuses))
	}
	fmt.Printf("traffic classes monitored: %v\n", classNames)
}
