// Serving example: FreewayML as a network service. The learner runs behind
// the HTTP JSON API of cmd/freeway-serve; this example starts the server
// in-process, streams an electricity-market dataset at it over HTTP (as a
// producer would in production), and polls the service's prequential stats.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http/httptest"

	"freewayml/internal/core"
	"freewayml/internal/datasets"
	"freewayml/internal/serve"
)

func main() {
	src, err := datasets.Build("Electricity", 128, 5)
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.Shift.WarmupPoints = 256
	server, err := serve.New(cfg, src.Dim(), src.Classes())
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()

	ts := httptest.NewServer(server)
	defer ts.Close()
	fmt.Println("FreewayML service listening on", ts.URL)

	client := ts.Client()
	sent := 0
	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		body, err := json.Marshal(serve.ProcessRequest{X: b.X, Y: b.Y})
		if err != nil {
			log.Fatal(err)
		}
		resp, err := client.Post(ts.URL+"/v1/process", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var out serve.ProcessResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		sent++
		if sent%25 == 0 {
			fmt.Printf("batch %3d over HTTP: pattern=%-16s strategy=%-30s acc=%.3f\n",
				sent, out.Pattern, out.Strategy, out.Accuracy)
		}
	}

	statsResp, err := client.Get(ts.URL + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats serve.StatsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nservice processed %d batches (%d samples) over HTTP\n", stats.Batches, stats.Samples)
	fmt.Printf("G_acc %.2f%%  SI %.3f  knowledge %d entries / %d bytes\n",
		100*stats.GAcc, stats.SI, stats.KnowledgeEntries, stats.KnowledgeBytes)
}
