// Quickstart: run FreewayML over a built-in drifting stream and watch the
// strategy selector react to the shift patterns.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"freewayml"
)

func main() {
	// Open one of the bundled dataset simulators. Every batch carries 128
	// labeled samples; the stream injects slight, sudden, and reoccurring
	// distribution shifts.
	stream, err := freewayml.OpenDataset("Electricity", 128, 42)
	if err != nil {
		log.Fatal(err)
	}

	// A learner with the paper's defaults (2 granularity models, α = 1.96,
	// 20-entry knowledge buffer).
	learner, err := freewayml.New(freewayml.DefaultConfig(), stream.Dim(), stream.Classes())
	if err != nil {
		log.Fatal(err)
	}
	defer learner.Close()

	for i := 0; ; i++ {
		batch, ok := stream.Next()
		if !ok {
			break
		}
		// Prequential protocol: predict first, then learn from the labels.
		res, err := learner.ProcessBatch(batch.X, batch.Y)
		if err != nil {
			log.Fatal(err)
		}
		if i%10 == 0 {
			fmt.Printf("batch %3d  drift=%-11s pattern=%-16s strategy=%-30s acc=%.3f\n",
				i, batch.Drift, res.Pattern, res.Strategy, res.Accuracy)
		}
	}

	stats := learner.Stats()
	fmt.Printf("\nprocessed %d batches (%d samples)\n", stats.Batches, stats.Samples)
	fmt.Printf("global accuracy (G_acc): %.2f%%\n", 100*stats.GAcc)
	fmt.Printf("stability index (SI):    %.3f\n", stats.SI)
	fmt.Printf("knowledge entries:       %d (%d bytes in memory)\n",
		stats.KnowledgeEntries, stats.KnowledgeBytes)
}
