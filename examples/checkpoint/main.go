// Checkpoint example: stop a deployed stream and resume it later. The
// learner's durable state — model parameters, the detector's PCA space,
// the knowledge store, the coherent experience — round-trips through
// Save/Load, so the resumed learner predicts identically and keeps
// learning from where it left off.
//
//	go run ./examples/checkpoint
package main

import (
	"bytes"
	"fmt"
	"log"

	"freewayml"
)

func main() {
	stream, err := freewayml.OpenDataset("NSL-KDD", 128, 9)
	if err != nil {
		log.Fatal(err)
	}
	cfg := freewayml.DefaultConfig()
	learner, err := freewayml.New(cfg, stream.Dim(), stream.Classes())
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: half the stream.
	processed := 0
	for processed < 60 {
		b, ok := stream.Next()
		if !ok {
			break
		}
		if _, err := learner.ProcessBatch(b.X, b.Y); err != nil {
			log.Fatal(err)
		}
		processed++
	}
	midStats := learner.Stats()
	fmt.Printf("before checkpoint: %d batches, G_acc %.2f%%, %d knowledge entries\n",
		midStats.Batches, 100*midStats.GAcc, midStats.KnowledgeEntries)

	// Checkpoint — in production this would be a file; the deployment
	// restarts below are simulated with a fresh learner.
	var checkpoint bytes.Buffer
	if err := learner.Save(&checkpoint); err != nil {
		log.Fatal(err)
	}
	if err := learner.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint written: %d bytes\n", checkpoint.Len())

	// Phase 2: a new process resumes from the checkpoint.
	resumed, err := freewayml.New(cfg, stream.Dim(), stream.Classes())
	if err != nil {
		log.Fatal(err)
	}
	defer resumed.Close()
	if err := resumed.Load(bytes.NewReader(checkpoint.Bytes())); err != nil {
		log.Fatal(err)
	}
	fmt.Println("resumed from checkpoint; continuing the stream")

	for {
		b, ok := stream.Next()
		if !ok {
			break
		}
		res, err := resumed.ProcessBatch(b.X, b.Y)
		if err != nil {
			log.Fatal(err)
		}
		processed++
		if res.Strategy == "knowledge-reuse" {
			fmt.Printf("batch %3d: reoccurring regime served by pre-checkpoint knowledge (acc %.1f%%)\n",
				processed, 100*res.Accuracy)
		}
	}
	final := resumed.Stats()
	fmt.Printf("after resume: %d more batches, G_acc %.2f%%, %d knowledge entries\n",
		final.Batches, 100*final.GAcc, final.KnowledgeEntries)
}
