// Finance example: stock-trend prediction over a market stream with strong
// directional drift (bull runs), abrupt regime changes, and a return to a
// previous regime — the economic-forecasting scenario from the paper's
// introduction. It contrasts FreewayML against the mechanism-free streaming
// model on the same stream to show the stability gain.
//
//	go run ./examples/finance
package main

import (
	"fmt"
	"log"
	"math"

	"freewayml"
)

func main() {
	freewayStats, freewaySeries := run(true)
	plainStats, plainSeries := run(false)

	fmt.Printf("%-22s %10s %8s\n", "system", "G_acc", "SI")
	fmt.Printf("%-22s %9.2f%% %8.3f\n", "FreewayML (minimal)", 100*plainStats.GAcc, plainStats.SI)
	fmt.Printf("%-22s %9.2f%% %8.3f\n", "FreewayML (full)", 100*freewayStats.GAcc, freewayStats.SI)

	// Worst drawdown: the deepest single-batch accuracy drop — the "sudden
	// decline" (SC2) the framework is designed to soften.
	fmt.Printf("\nworst single-batch accuracy drop: plain %.1f pts, FreewayML %.1f pts\n",
		100*worstDrop(plainSeries), 100*worstDrop(freewaySeries))
}

func run(freeway bool) (freewayml.Stats, []float64) {
	stream, err := freewayml.OpenDataset("StockTrend", 128, 11)
	if err != nil {
		log.Fatal(err)
	}
	cfg := freewayml.DefaultConfig()
	if !freeway {
		// A minimally-equipped learner: single-slot knowledge and experience
		// stores, so the mechanisms have almost nothing to work with.
		cfg.KdgBuffer = 1
		cfg.ExpBuffer = 1
	}
	learner, err := freewayml.New(cfg, stream.Dim(), stream.Classes())
	if err != nil {
		log.Fatal(err)
	}
	defer learner.Close()
	for {
		batch, ok := stream.Next()
		if !ok {
			break
		}
		if _, err := learner.ProcessBatch(batch.X, batch.Y); err != nil {
			log.Fatal(err)
		}
	}
	return learner.Stats(), learner.AccuracySeries()
}

func worstDrop(series []float64) float64 {
	worst := 0.0
	for i := 1; i < len(series); i++ {
		if d := series[i-1] - series[i]; d > worst {
			worst = d
		}
	}
	return math.Max(worst, 0)
}
