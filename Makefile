GO ?= go

.PHONY: all build test vet race check bench obs-smoke clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The full gate: everything CI runs.
check: build vet test race

# Runs the kernel + throughput benchmarks and refreshes BENCH_PR2.json.
bench:
	bash scripts/bench.sh

# End-to-end observability check: boots freeway-serve, streams a synthetic
# drifting stream, and asserts /v1/metrics and /v1/trace saw all three shift
# patterns (A, B, C).
obs-smoke:
	$(GO) build -o bin/freeway-serve ./cmd/freeway-serve
	$(GO) run ./cmd/obs-smoke -serve bin/freeway-serve

clean:
	$(GO) clean ./...
