GO ?= go

.PHONY: all build test vet race check bench clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The full gate: everything CI runs.
check: build vet test race

# Runs the kernel + throughput benchmarks and refreshes BENCH_PR2.json.
bench:
	bash scripts/bench.sh

clean:
	$(GO) clean ./...
