GO ?= go

.PHONY: all build test vet race check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The full gate: everything CI runs.
check: build vet test race

clean:
	$(GO) clean ./...
