GO ?= go

.PHONY: all build test vet race check no-unsafe bench bench-serve bench-ingest bench-infer bench-kernels loadgen-smoke obs-smoke cluster-smoke cluster-obs-smoke clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The kernel tiers promise auto-vectorizable pure-Go loops: no unsafe may
# enter the compute kernels or the quantizer.
no-unsafe:
	@if grep -rn '"unsafe"' internal/linalg internal/nn --include='*.go'; then \
		echo 'unsafe import found in kernel packages' >&2; exit 1; \
	fi
	@echo "no-unsafe: kernel packages clean"

# The full gate: everything CI runs.
check: build vet no-unsafe test race

# Runs the kernel + throughput benchmarks and refreshes BENCH_PR2.json,
# then the concurrent-serving gate (BENCH_PR5.json).
bench:
	bash scripts/bench.sh

# Concurrent-serving gate: session-manager shards=1 vs shards=8 at
# GOMAXPROCS=8 plus a closed-loop loadgen run; refreshes BENCH_PR5.json and
# fails if the striped map regresses against the single-lock baseline (or,
# on a >= 4-CPU host, wins by less than 3x on the churn workload).
bench-serve:
	bash scripts/bench_serve.sh

# Ingest gate: wire decode microbenchmarks (binary vs JSON, with the
# zero-alloc warm-decode gate) plus three closed-loop loadgen runs (JSON,
# per-request binary, coalesced binary); refreshes BENCH_PR7.json and fails
# if a warm binary decode allocates or coalesced ingest misses its
# host-adaptive throughput gate (>= 3x JSON on >= 4 CPUs, else >= 0.85x).
bench-ingest:
	bash scripts/bench_ingest.sh

# Inference-plane gate: two closed-loop loadgen runs with a 90%-read mix
# (label-less binary /infer frames), unfused vs cross-stream fused;
# refreshes BENCH_PR9.json and fails if fused inference misses its
# host-adaptive gate (>= 3x unfused on >= 4 CPUs, else >= 0.85x).
bench-infer:
	bash scripts/bench_infer.sh

# Kernel-tier gate: single-core f64 vs f32 vs int8 microbenchmarks of the
# GEMM kernels and the compiled inference engines; refreshes BENCH_PR10.json
# and fails if the f32 tier misses its host-adaptive gate (>= 2x the f64
# oracle on >= 4 CPUs, else >= 0.85x no-regression).
bench-kernels:
	bash scripts/bench_kernels.sh

# Short closed-loop load smoke: boots freeway-serve, drives 2 streams for
# ~2s, and fails on any request error.
loadgen-smoke:
	$(GO) build -o bin/freeway-serve ./cmd/freeway-serve
	$(GO) run ./cmd/freeway-loadgen -serve bin/freeway-serve \
		-streams 2 -concurrency 2 -batch 16 -duration 2s

# Distributed failover smoke: boots a router + 2 workers sharing a
# checkpoint directory, drives load through the router, SIGKILLs one worker
# 3s in and restarts it at 6s. The loadgen exits nonzero on ANY
# client-visible error — the router's retry/backoff budget must absorb the
# entire eject → failover → rejoin cycle.
cluster-smoke:
	$(GO) build -o bin/freeway-serve ./cmd/freeway-serve
	$(GO) build -o bin/freeway-router ./cmd/freeway-router
	$(GO) run ./cmd/freeway-loadgen -cluster 2 -streams 6 -concurrency 4 \
		-batch 16 -duration 9s -kill-after 3s -restart-after 6s -out -

# Cluster observability smoke: boots a router + 2 workers, drives JSON and
# binary batches with client-minted trace contexts, and asserts trace-id
# continuity across the router and worker spans (/v1/cluster/trace), a
# non-empty federated scrape labeling both workers (/v1/cluster/metrics),
# and well-shaped timeline/exemplar endpoints.
cluster-obs-smoke:
	$(GO) build -o bin/freeway-serve ./cmd/freeway-serve
	$(GO) build -o bin/freeway-router ./cmd/freeway-router
	$(GO) run ./cmd/cluster-obs-smoke -serve bin/freeway-serve -router bin/freeway-router

# End-to-end observability check: boots freeway-serve, streams a synthetic
# drifting stream, and asserts /v1/metrics and /v1/trace saw all three shift
# patterns (A, B, C).
obs-smoke:
	$(GO) build -o bin/freeway-serve ./cmd/freeway-serve
	$(GO) run ./cmd/obs-smoke -serve bin/freeway-serve

clean:
	$(GO) clean ./...
