package freewayml

import (
	"math"
	"path/filepath"
	"testing"
)

func TestDefaultConfigRoundtrip(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Model != "mlp" || cfg.ModelNum != 2 || cfg.Alpha != 1.96 || cfg.KdgBuffer != 20 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if cfg.GuardPolicy != "reject" {
		t.Errorf("default guard policy = %q, want reject", cfg.GuardPolicy)
	}
	cc, err := cfg.toCore()
	if err != nil {
		t.Fatalf("default config failed to map: %v", err)
	}
	if err := cc.Validate(); err != nil {
		t.Errorf("default config invalid after mapping: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(DefaultConfig(), 0, 2); err == nil {
		t.Error("dim 0 should error")
	}
	if _, err := New(DefaultConfig(), 4, 1); err == nil {
		t.Error("classes 1 should error")
	}
	bad := DefaultConfig()
	bad.Model = "nope"
	if _, err := New(bad, 4, 2); err == nil {
		t.Error("unknown model should error")
	}
}

func TestEndToEndPublicAPI(t *testing.T) {
	src, err := OpenDataset("SEA", 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != "SEA" || src.Dim() != 3 || src.Classes() != 2 {
		t.Fatalf("stream meta: %s %d %d", src.Name(), src.Dim(), src.Classes())
	}
	learner, err := New(DefaultConfig(), src.Dim(), src.Classes())
	if err != nil {
		t.Fatal(err)
	}
	defer learner.Close()

	seen := 0
	for seen < 60 {
		b, ok := src.Next()
		if !ok {
			break
		}
		res, err := learner.ProcessBatch(b.X, b.Y)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Predictions) != len(b.X) {
			t.Fatalf("predictions %d for %d samples", len(res.Predictions), len(b.X))
		}
		if res.Pattern == "" || res.Strategy == "" {
			t.Fatal("empty pattern/strategy strings")
		}
		seen++
	}
	st := learner.Stats()
	if st.Batches == 0 || st.Samples == 0 {
		t.Fatalf("no stats recorded: %+v", st)
	}
	if st.GAcc <= 0.5 {
		t.Errorf("G_acc = %v, want learning above chance", st.GAcc)
	}
	if st.SI <= 0 || st.SI > 1 {
		t.Errorf("SI = %v out of range", st.SI)
	}
	if got := len(learner.AccuracySeries()); got != st.Batches {
		t.Errorf("series length %d != batches %d", got, st.Batches)
	}
}

func TestOpenDatasetUnknown(t *testing.T) {
	if _, err := OpenDataset("nope", 64, 1); err == nil {
		t.Error("unknown dataset should error")
	}
	if len(Datasets()) < 10 {
		t.Errorf("datasets registry too small: %v", Datasets())
	}
}

func TestUnlabeledProcessBatch(t *testing.T) {
	learner, err := New(DefaultConfig(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer learner.Close()
	x := [][]float64{{1, 2, 3}, {4, 5, 6}}
	res, err := learner.ProcessBatch(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != -1 {
		t.Errorf("unlabeled accuracy = %v", res.Accuracy)
	}
	if len(res.Predictions) != 2 {
		t.Errorf("predictions = %v", res.Predictions)
	}
}

func TestBadGuardPolicyRejectedAtNew(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GuardPolicy = "yolo"
	if _, err := New(cfg, 3, 2); err == nil {
		t.Error("unknown guard policy should error")
	}
}

func TestGuardCountersReachPublicStats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GuardPolicy = "clamp"
	learner, err := New(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer learner.Close()
	x := [][]float64{{1, math.NaN(), 3}, {4, 5, math.Inf(1)}}
	if _, err := learner.ProcessBatch(x, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if st := learner.Stats(); st.SanitizedValues != 2 {
		t.Errorf("SanitizedValues = %d, want 2", st.SanitizedValues)
	}
}

func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	src, err := OpenDataset("SEA", 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	learner, err := New(DefaultConfig(), src.Dim(), src.Classes())
	if err != nil {
		t.Fatal(err)
	}
	defer learner.Close()
	for i := 0; i < 10; i++ {
		b, _ := src.Next()
		if _, err := learner.ProcessBatch(b.X, b.Y); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := learner.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	restored, err := New(DefaultConfig(), src.Dim(), src.Classes())
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	want := learner.Stats()
	got := restored.Stats()
	if got.Batches != want.Batches || got.GAcc != want.GAcc {
		t.Errorf("restored stats = %d/%v, want %d/%v", got.Batches, got.GAcc, want.Batches, want.GAcc)
	}
}
