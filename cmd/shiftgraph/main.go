// Command shiftgraph reproduces the data behind Figure 2: it runs a plain
// StreamingMLP plus a shift detector over one of the Sec. III study streams
// and emits the shift graph as CSV (batch, PCA coordinates, shift distance,
// severity, pattern, real-time accuracy) on stdout:
//
//	shiftgraph -dataset ElectricityLoad > graph.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"freewayml/internal/datasets"
	"freewayml/internal/linalg"
	"freewayml/internal/metrics"
	"freewayml/internal/model"
	"freewayml/internal/shift"
)

func main() {
	var (
		dataset    = flag.String("dataset", "ElectricityLoad", "ElectricityLoad | StockTrend | SolarIrradiance (any dataset works)")
		batch      = flag.Int("batch", 256, "mini-batch size")
		maxBatches = flag.Int("max", 0, "cap on batches (0 = full stream)")
		seed       = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	if err := run(*dataset, *batch, *maxBatches, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "shiftgraph:", err)
		os.Exit(1)
	}
}

func run(dataset string, batch, maxBatches int, seed int64) error {
	src, err := datasets.Build(dataset, batch, seed)
	if err != nil {
		return err
	}
	h := model.DefaultHyper()
	h.Seed = seed
	m, err := model.NewStreamingMLP(src.Dim(), src.Classes(), h)
	if err != nil {
		return err
	}
	cfg := shift.DefaultConfig()
	cfg.WarmupPoints = 2 * batch
	det, err := shift.NewDetector(cfg)
	if err != nil {
		return err
	}

	var g shift.Graph
	for n := 0; maxBatches <= 0 || n < maxBatches; n++ {
		b, ok := src.Next()
		if !ok {
			break
		}
		pred := m.Predict(b.X)
		acc, err := metrics.Accuracy(pred, b.Y)
		if err != nil {
			return err
		}
		points := make([]linalg.Vector, len(b.X))
		for i, row := range b.X {
			points[i] = linalg.Vector(row)
		}
		obs, err := det.Observe(points)
		if err != nil {
			return err
		}
		g.Add(obs, acc)
		if _, err := m.Fit(b.X, b.Y); err != nil {
			return err
		}
	}
	return g.WriteCSV(os.Stdout)
}
