// Command obs-smoke is the end-to-end observability check behind
// `make obs-smoke`: it boots freeway-serve on an ephemeral port, streams a
// synthetic drifting stream engineered to hit every shift pattern (slight
// A1/A2, sudden B, reoccurring C), then scrapes /v1/metrics and /v1/trace
// and asserts the instrumentation saw what the stream did:
//
//	obs-smoke -serve bin/freeway-serve
//
// Exit status 0 means every assertion held; any failure prints the reason
// and exits 1.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"time"

	"freewayml/internal/obs"
	"freewayml/internal/serve"
)

func main() {
	var (
		serveBin = flag.String("serve", "bin/freeway-serve", "path to the freeway-serve binary")
		timeout  = flag.Duration("timeout", 60*time.Second, "overall deadline")
	)
	flag.Parse()
	if err := run(*serveBin, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "obs-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("obs-smoke: PASS")
}

var listenRe = regexp.MustCompile(`listening on (\S+)`)

func run(serveBin string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)

	// Boot the server on an ephemeral port; the bound address is announced
	// on stdout. A small warmup keeps the pattern phases short.
	cmd := exec.Command(serveBin,
		"-addr", "127.0.0.1:0", "-dim", "3", "-classes", "2",
		"-warmup", "128", "-trace-cap", "256", "-seed", "1", "-pprof")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %w", serveBin, err)
	}
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}()

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := listenRe.FindStringSubmatch(sc.Text()); m != nil {
				addrCh <- m[1]
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(10 * time.Second):
		return fmt.Errorf("server never announced its address")
	}
	if err := waitHealthy(base, deadline); err != nil {
		return err
	}

	// The drifting stream: a long home regime (slight shifts + window
	// closes that preserve knowledge), a blended batch plus a jump to a
	// far-away regime (sudden B), a dozen away batches, then a return home
	// (reoccurring C).
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30; i++ {
		if err := post(base, driftBatch(rng, 64, 0, 0, nil)); err != nil {
			return fmt.Errorf("home batch %d: %w", i, err)
		}
	}
	pre := driftBatch(rng, 64, 0, 0, nil)
	tail := driftBatch(rng, 64, 50, 40, nil)
	for i := 44; i < 64; i++ {
		pre.X[i], pre.Y[i] = tail.X[i], tail.Y[i]
	}
	if err := post(base, pre); err != nil {
		return fmt.Errorf("blended batch: %w", err)
	}
	for i := 0; i < 12; i++ {
		if err := post(base, driftBatch(rng, 64, 50, 40, nil)); err != nil {
			return fmt.Errorf("away batch %d: %w", i, err)
		}
	}
	if err := post(base, driftBatch(rng, 64, 0, 0, nil)); err != nil {
		return fmt.Errorf("return batch: %w", err)
	}

	// A second named stream: its learner, metrics, and trace must be fully
	// isolated from the default stream's.
	for i := 0; i < 6; i++ {
		if err := postStream(base, "alt", driftBatch(rng, 64, 0, 0, nil)); err != nil {
			return fmt.Errorf("alt batch %d: %w", i, err)
		}
	}

	if err := checkStreams(base); err != nil {
		return err
	}
	if err := checkMetrics(base); err != nil {
		return err
	}
	if err := checkTrace(base); err != nil {
		return err
	}
	if err := checkPprof(base); err != nil {
		return err
	}
	return nil
}

func waitHealthy(base string, deadline time.Time) error {
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("server at %s never became healthy", base)
}

// driftBatch mirrors the core test stream: two separable Gaussian classes
// centered at (cx, cy) in a 3-feature space.
func driftBatch(rng *rand.Rand, n int, cx, cy float64, _ any) serve.ProcessRequest {
	req := serve.ProcessRequest{X: make([][]float64, n), Y: make([]int, n)}
	for i := range req.X {
		c := rng.Intn(2)
		req.X[i] = []float64{
			cx + float64(c)*2 + rng.NormFloat64()*0.3,
			cy + rng.NormFloat64()*0.3,
			rng.NormFloat64() * 0.3,
		}
		req.Y[i] = c
	}
	return req
}

func post(base string, req serve.ProcessRequest) error {
	return postTo(base+"/v1/process", req)
}

func postStream(base, id string, req serve.ProcessRequest) error {
	return postTo(base+"/v1/streams/"+id+"/process", req)
}

func postTo(url string, req serve.ProcessRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("process status %d: %s", resp.StatusCode, msg)
	}
	return nil
}

// checkStreams asserts the stream listing shows both streams with their own
// batch counts.
func checkStreams(base string) error {
	resp, err := http.Get(base + "/v1/streams")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("streams status %d", resp.StatusCode)
	}
	var out serve.StreamsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return fmt.Errorf("streams decode: %w", err)
	}
	batches := map[string]int{}
	for _, st := range out.Streams {
		batches[st.ID] = st.Batches
	}
	if batches["default"] != 44 || batches["alt"] != 6 {
		return fmt.Errorf("stream batches = %v, want default=44 alt=6", batches)
	}
	if out.Sessions.Active != 2 || out.Sessions.Created != 2 {
		return fmt.Errorf("session aggregates = %+v, want 2 active / 2 created", out.Sessions)
	}
	fmt.Printf("obs-smoke: streams ok (default=44 alt=6 batches)\n")
	return nil
}

// checkMetrics scrapes /v1/metrics and asserts the exposition is
// well-formed, covers >= 12 distinct series, and counted every pattern.
func checkMetrics(base string) error {
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != serve.MetricsContentType {
		return fmt.Errorf("metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})?) (\S+)$`)
	series := map[string]float64{}
	for i, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("metrics line %d malformed: %q", i+1, line)
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return fmt.Errorf("metrics line %d value: %w", i+1, err)
		}
		series[m[1]] = v
	}
	if len(series) < 12 {
		return fmt.Errorf("exposition has %d series, want >= 12", len(series))
	}
	slight := series[`freeway_pattern_total{pattern="A1",stream="default"}`] + series[`freeway_pattern_total{pattern="A2",stream="default"}`]
	if slight <= 0 {
		return fmt.Errorf("no slight (A1/A2) pattern counted")
	}
	if series[`freeway_pattern_total{pattern="B",stream="default"}`] <= 0 {
		return fmt.Errorf("no sudden (B) pattern counted")
	}
	if series[`freeway_pattern_total{pattern="C",stream="default"}`] <= 0 {
		return fmt.Errorf("no reoccurring (C) pattern counted")
	}
	if got := series[`freeway_batches_total{stream="default"}`]; got != 44 {
		return fmt.Errorf(`freeway_batches_total{stream="default"} = %v, want 44`, got)
	}
	if got := series[`freeway_batches_total{stream="alt"}`]; got != 6 {
		return fmt.Errorf(`freeway_batches_total{stream="alt"} = %v, want 6`, got)
	}
	if got := series["freeway_sessions_active"]; got != 2 {
		return fmt.Errorf("freeway_sessions_active = %v, want 2", got)
	}
	fmt.Printf("obs-smoke: metrics ok (%d series; A1/A2=%v B=%v C=%v)\n",
		len(series), slight,
		series[`freeway_pattern_total{pattern="B",stream="default"}`],
		series[`freeway_pattern_total{pattern="C",stream="default"}`])
	return nil
}

// checkTrace scrapes the decision trace and asserts every event names its
// mechanism and carries stage timings, and that all three pattern families
// appear.
func checkTrace(base string) error {
	resp, err := http.Get(base + "/v1/trace")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != serve.TraceContentType {
		return fmt.Errorf("trace Content-Type = %q", ct)
	}
	patterns := map[string]bool{}
	events := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev obs.TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("trace line %d: %w", events+1, err)
		}
		if ev.Strategy == "" {
			return fmt.Errorf("trace event %d has no strategy", ev.Batch)
		}
		if len(ev.Stages) == 0 {
			return fmt.Errorf("trace event %d has no stage timings", ev.Batch)
		}
		p := ev.Pattern
		if ev.SubPattern != "" {
			p = ev.SubPattern
		}
		patterns[p[:1]] = true
		events++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if events != 44 {
		return fmt.Errorf("trace has %d events, want 44", events)
	}
	for _, want := range []string{"A", "B", "C"} {
		if !patterns[want] {
			return fmt.Errorf("trace never observed a %s-family pattern (saw %v)", want, patterns)
		}
	}
	fmt.Printf("obs-smoke: trace ok (%d events, patterns %v)\n", events, keys(patterns))
	return nil
}

// checkPprof confirms the opt-in profiling surface answers.
func checkPprof(base string) error {
	resp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("pprof status %d", resp.StatusCode)
	}
	fmt.Println("obs-smoke: pprof ok")
	return nil
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
