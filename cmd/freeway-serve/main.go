// Command freeway-serve runs FreewayML as an HTTP JSON service hosting many
// named streams, each with its own learner. Batches are POSTed per stream
// (labeled ones train, unlabeled ones only infer), prequential metrics come
// from the matching stats endpoint:
//
//	freeway-serve -addr :8080 -dim 6 -classes 2 -model mlp
//	curl -s localhost:8080/v1/streams/orders/process -d '{"x":[[0.4,0.5,0.4,0.5,0.4,0.5]],"y":[0]}'
//	curl -s localhost:8080/v1/streams/orders/stats
//	curl -s localhost:8080/v1/streams
//
// The single-stream endpoints (/v1/process, /v1/stats, /v1/trace) remain as
// aliases for the stream named "default". Sessions are created on first
// use, bounded by -max-sessions (LRU eviction), and expired by
// -session-ttl; -checkpoint-dir persists one snapshot per stream, restored
// when its id reappears; -shared-knowledge backs every stream with one
// process-wide knowledge store.
//
// The server is hardened for long-lived deployments: request bodies are
// capped, read/write timeouts bound slow clients, SIGINT/SIGTERM drain
// in-flight requests before exit, and -checkpoint enables crash-safe
// periodic snapshots of the default stream that are restored automatically
// on restart.
//
// High-throughput ingest: POSTing with Content-Type
// application/x-freeway-batch sends the length-prefixed binary frame format
// (internal/wire) instead of JSON, and -binary opens a second listener for
// persistent binary connections. -coalesce fuses concurrently arriving
// batches per stream into single compute passes (-coalesce-window,
// -coalesce-max-rows tune the gathering policy).
//
// Observability: /v1/metrics serves Prometheus text exposition, /v1/trace
// serves the per-batch decision trace as JSONL (ring capacity set by
// -trace-cap), and -pprof mounts net/http/pprof under /debug/pprof/. The
// actual bound address is printed on startup, so -addr 127.0.0.1:0 works
// for harnesses that need an ephemeral port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"freewayml/internal/core"
	"freewayml/internal/guard"
	"freewayml/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address (port 0 picks an ephemeral port; the bound address is printed)")
		dim       = flag.Int("dim", 6, "feature dimensionality of the stream")
		classes   = flag.Int("classes", 2, "number of labels")
		family    = flag.String("model", "mlp", "model family: lr | mlp | cnn3 | cnn5")
		seed      = flag.Int64("seed", 1, "random seed")
		guardPol  = flag.String("guard", "reject", "non-finite input policy: off | reject | clamp | impute")
		maxBody   = flag.Int64("max-body", serve.DefaultMaxBodyBytes, "request body cap in bytes")
		ckptPath  = flag.String("checkpoint", "", "default-stream checkpoint file path (enables crash-safe snapshots)")
		ckptDir   = flag.String("checkpoint-dir", "", "directory for per-stream checkpoints (one <id>.ckpt per stream, restored on reappearance)")
		ckptEvery = flag.Int("checkpoint-every", 64, "batches between periodic checkpoints")
		maxSess   = flag.Int("max-sessions", 0, "resident stream bound; exceeding it evicts the least-recently-used (0 keeps the default of 64)")
		shards    = flag.Int("shards", 0, "session-map lock-stripe count (0 sizes to GOMAXPROCS; 1 is the single-lock baseline)")
		sessTTL   = flag.Duration("session-ttl", 0, "evict streams idle longer than this (0 disables TTL eviction)")
		sharedKdg = flag.Bool("shared-knowledge", false, "back every stream with one process-wide knowledge store")
		warmup    = flag.Int("warmup", 0, "override the shift detector's warmup points (0 keeps the default)")
		traceCap  = flag.Int("trace-cap", 0, "decision-trace ring capacity for /v1/trace (0 keeps the default of 1024)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		binAddr   = flag.String("binary", "", "also listen for persistent binary-frame connections on this address (empty disables; port 0 picks an ephemeral port)")
		coalesce  = flag.Bool("coalesce", false, "fuse concurrently arriving batches per stream into single compute passes")
		coalWin   = flag.Duration("coalesce-window", 0, "extra gathering delay per fused pass (0 = pure group commit, no added idle latency)")
		coalRows  = flag.Int("coalesce-max-rows", 0, "row bound per fused pass (0 = unbounded)")
		tier      = flag.String("kernel-tier", "f64", "inference-plane kernel tier: f64 (bitwise oracle) | f32 | int8-infer; training always runs f64")
	)
	flag.Parse()
	opts := serveOptions{
		maxBody: *maxBody, ckptPath: *ckptPath, ckptDir: *ckptDir, ckptEvery: *ckptEvery,
		maxSessions: *maxSess, sessionTTL: *sessTTL, sharedKnowledge: *sharedKdg,
		shards: *shards, warmup: *warmup, traceCap: *traceCap, pprof: *pprofOn,
		binAddr: *binAddr, coalesce: *coalesce, coalWindow: *coalWin, coalMaxRows: *coalRows,
		kernelTier: *tier,
	}
	if err := run(*addr, *dim, *classes, *family, *seed, *guardPol, opts); err != nil {
		log.Fatal(err)
	}
}

// serveOptions bundles the serving knobs main parses from flags.
type serveOptions struct {
	maxBody         int64
	ckptPath        string
	ckptDir         string
	ckptEvery       int
	maxSessions     int
	sessionTTL      time.Duration
	sharedKnowledge bool
	shards          int
	warmup          int
	traceCap        int
	pprof           bool
	binAddr         string
	coalesce        bool
	coalWindow      time.Duration
	coalMaxRows     int
	kernelTier      string
}

func run(addr string, dim, classes int, family string, seed int64, guardPol string, o serveOptions) error {
	cfg := core.DefaultConfig()
	cfg.ModelFamily = family
	cfg.Seed = seed
	cfg.Hyper.Seed = seed
	pol, err := guard.ParsePolicy(guardPol)
	if err != nil {
		return err
	}
	cfg.Guard = pol
	cfg.KernelTier = o.kernelTier
	if o.warmup > 0 {
		cfg.Shift.WarmupPoints = o.warmup
	}

	opts := []serve.Option{
		serve.WithMaxBodyBytes(o.maxBody),
		serve.WithTraceCap(o.traceCap),
		serve.WithSessionLimits(o.maxSessions, o.sessionTTL),
		serve.WithShards(o.shards),
	}
	if o.pprof {
		opts = append(opts, serve.WithPprof())
	}
	if o.ckptPath != "" {
		opts = append(opts, serve.WithCheckpoint(o.ckptPath, o.ckptEvery))
	}
	if o.ckptDir != "" {
		opts = append(opts, serve.WithCheckpointDir(o.ckptDir, o.ckptEvery))
	}
	if o.sharedKnowledge {
		opts = append(opts, serve.WithSharedKnowledge())
	}
	if o.coalesce {
		opts = append(opts, serve.WithCoalescing(o.coalWindow, o.coalMaxRows))
	}
	srv, err := serve.New(cfg, dim, classes, opts...)
	if err != nil {
		return err
	}

	if o.ckptPath != "" {
		switch err := srv.LoadCheckpointFile(o.ckptPath); {
		case err == nil:
			fmt.Printf("freeway-serve: resumed from checkpoint %s\n", o.ckptPath)
		case errors.Is(err, os.ErrNotExist):
			// First run: nothing to resume.
		default:
			// A corrupt or mismatched checkpoint must not silently start a
			// cold model that will overwrite it at the next snapshot.
			srv.Close()
			return fmt.Errorf("resume from %s: %w", o.ckptPath, err)
		}
	}

	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Listen explicitly (rather than ListenAndServe) so :0 resolves to a
	// real port before we announce the address.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		srv.Close()
		return err
	}
	// The bound address names this worker in its trace spans, so the
	// router's /v1/cluster/trace can tell workers apart.
	srv.SetWorkerID(ln.Addr().String())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	if o.binAddr != "" {
		binLn, err := net.Listen("tcp", o.binAddr)
		if err != nil {
			srv.Close()
			ln.Close()
			return err
		}
		go func() {
			fmt.Printf("freeway-serve: binary listening on %s\n", binLn.Addr())
			if err := srv.ServeBinary(binLn); err != nil {
				errCh <- fmt.Errorf("binary listener: %w", err)
			}
		}()
	}
	go func() {
		fmt.Printf("freeway-serve: %s model, %d features, %d classes, listening on %s\n",
			family, dim, classes, ln.Addr())
		errCh <- httpSrv.Serve(ln)
	}()

	select {
	case err := <-errCh:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	stop()
	log.Print("freeway-serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("freeway-serve: shutdown: %v", err)
	}
	// Close drains async learner work and writes the final checkpoint.
	return srv.Close()
}
