// Command freeway-serve runs FreewayML as an HTTP JSON service. Batches are
// POSTed to /v1/process (labeled ones train, unlabeled ones only infer),
// prequential metrics come from /v1/stats:
//
//	freeway-serve -addr :8080 -dim 6 -classes 2 -model mlp
//	curl -s localhost:8080/v1/process -d '{"x":[[0.4,0.5,0.4,0.5,0.4,0.5]],"y":[0]}'
//	curl -s localhost:8080/v1/stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"freewayml/internal/core"
	"freewayml/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		dim     = flag.Int("dim", 6, "feature dimensionality of the stream")
		classes = flag.Int("classes", 2, "number of labels")
		family  = flag.String("model", "mlp", "model family: lr | mlp | cnn3 | cnn5")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.ModelFamily = *family
	cfg.Seed = *seed
	cfg.Hyper.Seed = *seed

	srv, err := serve.New(cfg, *dim, *classes)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	fmt.Printf("freeway-serve: %s model, %d features, %d classes, listening on %s\n",
		*family, *dim, *classes, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
