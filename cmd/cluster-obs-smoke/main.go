// Command cluster-obs-smoke is the end-to-end cluster observability check
// behind `make cluster-obs-smoke`: it boots a freeway-router in front of two
// freeway-serve workers sharing a checkpoint directory, drives JSON and
// binary batches through the router with client-minted trace contexts, and
// asserts the cluster surfaces tell one coherent story:
//
//   - trace-id continuity: the id a client sends (traceparent header on the
//     JSON path, the version-2 frame extension on the raw binary path) is
//     echoed on the response and /v1/cluster/trace?id= returns both the
//     router.forward and worker.process spans, parent-linked;
//
//   - metrics federation: /v1/cluster/metrics merges router-local series
//     (unlabeled) with every worker's scrape under worker="<addr>" labels,
//     histogram _sum samples included;
//
//   - the timeline and exemplar endpoints answer with the right shapes.
//
//     cluster-obs-smoke -serve bin/freeway-serve -router bin/freeway-router
//
// Exit status 0 means every assertion held; any failure prints the reason
// and exits 1.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"syscall"
	"time"

	"freewayml/internal/obs"
	"freewayml/internal/serve"
	"freewayml/internal/wire"
)

func main() {
	var (
		serveBin  = flag.String("serve", "bin/freeway-serve", "path to the freeway-serve binary")
		routerBin = flag.String("router", "bin/freeway-router", "path to the freeway-router binary")
		timeout   = flag.Duration("timeout", 60*time.Second, "overall deadline")
	)
	flag.Parse()
	if err := run(*serveBin, *routerBin, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "cluster-obs-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("cluster-obs-smoke: PASS")
}

var listenRe = regexp.MustCompile(`listening on (\S+)`)

// proc is one booted process plus the listen address it announced.
type proc struct {
	cmd  *exec.Cmd
	addr string
}

// boot starts a binary and waits for it to announce "listening on <addr>".
func boot(bin string, args ...string) (*proc, error) {
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", bin, err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := listenRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &proc{cmd: cmd, addr: addr}, nil
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("%s never announced its address", bin)
	}
}

// stop terminates the process, escalating SIGTERM to SIGKILL.
func (p *proc) stop() {
	if p == nil || p.cmd == nil {
		return
	}
	p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		p.cmd.Process.Kill()
		<-done
	}
}

func run(serveBin, routerBin string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	dir, err := os.MkdirTemp("", "cluster-obs-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	var workers [2]*proc
	for i := range workers {
		w, err := boot(serveBin,
			"-addr", "127.0.0.1:0", "-dim", "3", "-classes", "2",
			"-warmup", "64", "-seed", fmt.Sprint(i+1),
			"-checkpoint-dir", dir, "-checkpoint-every", "1")
		if err != nil {
			return fmt.Errorf("worker %d: %w", i, err)
		}
		defer w.stop()
		workers[i] = w
	}
	router, err := boot(routerBin,
		"-addr", "127.0.0.1:0",
		"-workers", workers[0].addr+","+workers[1].addr)
	if err != nil {
		return fmt.Errorf("router: %w", err)
	}
	defer router.stop()
	base := "http://" + router.addr
	if err := waitReady(base, deadline); err != nil {
		return err
	}

	// Background traffic over enough streams that the hash ring spreads them
	// across both workers, so federation has per-worker series to merge.
	rng := rand.New(rand.NewSource(2))
	for s := 0; s < 8; s++ {
		x, y := makeBatch(rng, 32)
		if err := postJSON(base, fmt.Sprintf("warm-%d", s), "", x, y); err != nil {
			return fmt.Errorf("warm stream %d: %w", s, err)
		}
	}

	if err := checkContinuity(base, rng, "json"); err != nil {
		return err
	}
	if err := checkContinuity(base, rng, "binary"); err != nil {
		return err
	}
	if err := checkFrameTrace(workers[0], rng); err != nil {
		return err
	}
	if err := checkFederation(base, workers[:]); err != nil {
		return err
	}
	if err := checkTimeline(base); err != nil {
		return err
	}
	return nil
}

func waitReady(base string, deadline time.Time) error {
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("router at %s never became ready", base)
}

// makeBatch builds one separable two-class batch in a 3-feature space.
func makeBatch(rng *rand.Rand, n int) ([][]float64, []int) {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		c := rng.Intn(2)
		x[i] = []float64{float64(c)*2 + rng.NormFloat64()*0.3, rng.NormFloat64() * 0.3, 0}
		y[i] = c
	}
	return x, y
}

// postJSON sends one JSON batch through the router; traceparent is attached
// when non-empty. Returns the response headers via doPost.
func postJSON(base, stream, traceparent string, x [][]float64, y []int) error {
	_, err := doPost(base, stream, traceparent, "application/json", mustJSON(x, y))
	return err
}

func mustJSON(x [][]float64, y []int) []byte {
	body, err := json.Marshal(struct {
		X [][]float64 `json:"x"`
		Y []int       `json:"y"`
	}{x, y})
	if err != nil {
		panic(err)
	}
	return body
}

// doPost POSTs one process request and returns the response headers.
func doPost(base, stream, traceparent, contentType string, payload []byte) (http.Header, error) {
	req, err := http.NewRequest(http.MethodPost,
		base+"/v1/streams/"+stream+"/process", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	if traceparent != "" {
		req.Header.Set(obs.TraceparentHeader, traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("stream %s: status %d: %s", stream, resp.StatusCode, msg)
	}
	io.Copy(io.Discard, resp.Body)
	return resp.Header, nil
}

// checkContinuity sends one batch with a client-minted trace context (JSON
// body or binary wire frame) and asserts the one trace id links the client,
// the router's per-hop response headers, and the router + worker spans at
// /v1/cluster/trace.
func checkContinuity(base string, rng *rand.Rand, proto string) error {
	tc := obs.NewTraceContext()
	x, y := makeBatch(rng, 32)
	stream := "smoke-" + proto
	var hdr http.Header
	var err error
	if proto == "binary" {
		frame, ferr := wire.AppendFrame(nil, "", wire.Float64, x, y)
		if ferr != nil {
			return ferr
		}
		hdr, err = doPost(base, stream, tc.Traceparent(), serve.BinaryContentType, frame)
	} else {
		hdr, err = doPost(base, stream, tc.Traceparent(), "application/json", mustJSON(x, y))
	}
	if err != nil {
		return fmt.Errorf("%s batch: %w", proto, err)
	}
	if got := hdr.Get(obs.TraceIDHeader); got != tc.TraceID {
		return fmt.Errorf("%s: response trace id = %q, want the client-minted %q", proto, got, tc.TraceID)
	}
	if hdr.Get(obs.RouterMicrosHeader) == "" || hdr.Get(obs.WorkerMicrosHeader) == "" {
		return fmt.Errorf("%s: per-hop latency headers missing (router=%q worker=%q)",
			proto, hdr.Get(obs.RouterMicrosHeader), hdr.Get(obs.WorkerMicrosHeader))
	}

	spans, err := fetchTrace(base, tc.TraceID)
	if err != nil {
		return err
	}
	routerSpans := map[string]bool{} // span id -> present
	var workerSpan *obs.Span
	for i, s := range spans {
		if s.TraceID != tc.TraceID {
			return fmt.Errorf("%s: span %d carries trace %q, want %q", proto, i, s.TraceID, tc.TraceID)
		}
		switch s.Name {
		case "router.forward":
			routerSpans[s.SpanID] = true
		case "worker.process":
			workerSpan = &spans[i]
		}
	}
	if len(routerSpans) == 0 || workerSpan == nil {
		return fmt.Errorf("%s: trace %s has %d router and %v worker spans, want both hops",
			proto, tc.TraceID, len(routerSpans), workerSpan != nil)
	}
	if !routerSpans[workerSpan.Parent] {
		return fmt.Errorf("%s: worker span parent %q is not a router attempt span", proto, workerSpan.Parent)
	}
	if workerSpan.Proto != proto {
		return fmt.Errorf("%s: worker span proto = %q", proto, workerSpan.Proto)
	}
	fmt.Printf("cluster-obs-smoke: %s continuity ok (trace %s: %d spans, worker %s)\n",
		proto, tc.TraceID, len(spans), workerSpan.Service)
	return nil
}

// checkFrameTrace exercises the version-2 frame extension: a binary frame
// carrying its own trace context POSTed straight to a worker (no traceparent
// header) must join the worker span to the embedded id.
func checkFrameTrace(worker *proc, rng *rand.Rand) error {
	tc := obs.NewTraceContext()
	x, y := makeBatch(rng, 16)
	frame, err := wire.AppendFrameTrace(nil, "", tc.Traceparent(), wire.Float64, x, y)
	if err != nil {
		return err
	}
	hdr, err := doPost("http://"+worker.addr, "smoke-frame", "", serve.BinaryContentType, frame)
	if err != nil {
		return fmt.Errorf("frame-traced batch: %w", err)
	}
	if got := hdr.Get(obs.TraceIDHeader); got != tc.TraceID {
		return fmt.Errorf("frame trace: worker echoed %q, want the frame-embedded %q", got, tc.TraceID)
	}
	fmt.Printf("cluster-obs-smoke: v2 frame trace ok (worker joined %s)\n", tc.TraceID)
	return nil
}

// fetchTrace pulls the assembled cluster-wide trace from the router.
func fetchTrace(base, id string) ([]obs.Span, error) {
	resp, err := http.Get(base + "/v1/cluster/trace?id=" + id)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster trace status %d", resp.StatusCode)
	}
	var spans []obs.Span
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		return nil, fmt.Errorf("cluster trace decode: %w", err)
	}
	return spans, nil
}

// checkFederation asserts /v1/cluster/metrics merges router-local series
// (unlabeled) with both workers' scrapes (worker-labeled), histogram _sum
// samples included.
func checkFederation(base string, workers []*proc) error {
	resp, err := http.Get(base + "/v1/cluster/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster metrics status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	text := string(body)
	if !strings.Contains(text, "\nfreeway_router_requests_total ") &&
		!strings.HasPrefix(text, "freeway_router_requests_total ") {
		return fmt.Errorf("federated scrape lacks the unlabeled router-local freeway_router_requests_total")
	}
	for _, w := range workers {
		if !strings.Contains(text, `worker="`+w.addr+`"`) {
			return fmt.Errorf("federated scrape lacks worker=%q labels", w.addr)
		}
	}
	sawSum := false
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "_sum{") && strings.Contains(line, `worker="`) {
			sawSum = true
			break
		}
	}
	if !sawSum {
		return fmt.Errorf("federated scrape lacks worker-labeled histogram _sum samples")
	}
	fmt.Printf("cluster-obs-smoke: federation ok (%d bytes, both workers labeled)\n", len(body))
	return nil
}

// checkTimeline asserts the events and exemplars endpoints answer with the
// right shapes; a healthy run has no breaker events, but the slow-request
// ring must have captured the traffic just driven.
func checkTimeline(base string) error {
	resp, err := http.Get(base + "/v1/cluster/events")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster events status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		return fmt.Errorf("cluster events Content-Type = %q", ct)
	}

	resp, err = http.Get(base + "/v1/cluster/exemplars")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster exemplars status %d", resp.StatusCode)
	}
	var ex []obs.Exemplar
	if err := json.NewDecoder(resp.Body).Decode(&ex); err != nil {
		return fmt.Errorf("cluster exemplars decode: %w", err)
	}
	if len(ex) == 0 {
		return fmt.Errorf("exemplar ring empty after driving traffic")
	}
	if ex[0].TraceID == "" {
		return fmt.Errorf("slowest exemplar carries no trace id: %+v", ex[0])
	}
	fmt.Printf("cluster-obs-smoke: timeline ok (%d exemplars, slowest %.0fµs trace %s)\n",
		len(ex), ex[0].DurationMicros, ex[0].TraceID)
	return nil
}
