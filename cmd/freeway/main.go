// Command freeway runs FreewayML (or any baseline framework) over one of
// the built-in dataset streams and reports prequential metrics:
//
//	freeway -dataset Electricity -model mlp -batch 256
//	freeway -dataset NSL-KDD -system River
//	freeway -dataset SEA -trace decisions.jsonl
//
// -trace writes one JSON line per batch with the full decision record:
// detected pattern, dispatched strategy, shift evidence, window state,
// fusion weights, and per-stage timings (FreewayML runs only).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"freewayml/internal/baselines"
	"freewayml/internal/core"
	"freewayml/internal/datasets"
	"freewayml/internal/metrics"
	"freewayml/internal/model"
	"freewayml/internal/obs"
	"freewayml/internal/stream"
)

func main() {
	var (
		dataset    = flag.String("dataset", "Electricity", "dataset name ("+strings.Join(datasets.Names(), ", ")+")")
		csvPath    = flag.String("csv", "", "run on a CSV file instead (numeric features, integer label last)")
		csvDim     = flag.Int("csv-dim", 0, "feature column count of the CSV")
		csvClasses = flag.Int("csv-classes", 0, "label count of the CSV")
		csvHeader  = flag.Bool("csv-header", true, "CSV has a header row")
		system     = flag.String("system", "FreewayML", "FreewayML | Flink ML | Spark MLlib | Alink | River | Camel | A-GEM | Replay | EWC | SEED | Plain")
		family     = flag.String("model", "mlp", "model family: lr | mlp | cnn3 | cnn5 | nb | ht")
		batch      = flag.Int("batch", 256, "mini-batch size")
		maxBatches = flag.Int("max", 0, "cap on batches (0 = full stream)")
		seed       = flag.Int64("seed", 1, "random seed")
		verbose    = flag.Bool("v", false, "print every batch's pattern and strategy")
		tracePath  = flag.String("trace", "", "write per-batch decision traces as JSONL to this file (FreewayML only)")
	)
	flag.Parse()

	src, err := openSource(*dataset, *csvPath, *csvDim, *csvClasses, *csvHeader, *batch, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "freeway:", err)
		os.Exit(1)
	}
	if err := run(src, *system, *family, *batch, *maxBatches, *seed, *verbose, *tracePath); err != nil {
		fmt.Fprintln(os.Stderr, "freeway:", err)
		os.Exit(1)
	}
}

// openSource builds either a registry dataset or a CSV-backed stream.
func openSource(dataset, csvPath string, csvDim, csvClasses int, csvHeader bool, batch int, seed int64) (stream.Source, error) {
	if csvPath == "" {
		return datasets.Build(dataset, batch, seed)
	}
	if csvDim < 1 || csvClasses < 2 {
		return nil, fmt.Errorf("-csv requires -csv-dim and -csv-classes")
	}
	f, err := os.Open(csvPath)
	if err != nil {
		return nil, err
	}
	// The process exits after the run; the descriptor is released then.
	return datasets.NewCSVStream(csvPath, f, batch, csvDim, csvClasses, csvHeader)
}

func run(src stream.Source, system, family string, batch, maxBatches int, seed int64, verbose bool, tracePath string) error {

	if tracePath != "" && system != "FreewayML" {
		return fmt.Errorf("-trace records FreewayML decisions; it requires -system FreewayML (got %s)", system)
	}

	var preq metrics.Prequential
	strategies := map[string]int{}

	step := func(b stream.Batch) ([]int, error) { return nil, nil }
	var closer func() error

	if system == "FreewayML" {
		cfg := core.DefaultConfig()
		cfg.ModelFamily = family
		cfg.Seed = seed
		cfg.Hyper.Seed = seed
		cfg.Shift.WarmupPoints = 2 * batch
		l, err := core.NewLearner(cfg, src.Dim(), src.Classes())
		if err != nil {
			return err
		}
		closer = l.Close

		var traceW *bufio.Writer
		var observer *core.Observer
		if tracePath != "" {
			f, err := os.Create(tracePath)
			if err != nil {
				return fmt.Errorf("trace: %w", err)
			}
			defer f.Close()
			traceW = bufio.NewWriter(f)
			defer traceW.Flush()
			// The ring only bridges Process to the file write, so a few
			// events of capacity suffice.
			observer = core.NewObserver(obs.NewRegistry(), 4)
			l.SetObserver(observer)
		}
		step = func(b stream.Batch) ([]int, error) {
			res, err := l.Process(context.Background(), b)
			if err != nil {
				return nil, err
			}
			strategies[res.Strategy.String()]++
			if traceW != nil {
				if ev, ok := observer.Trace().Newest(); ok {
					if err := obs.EncodeJSONL(traceW, ev); err != nil {
						return nil, fmt.Errorf("trace: %w", err)
					}
				}
			}
			if verbose {
				fmt.Printf("batch %4d  pattern=%-16s strategy=%-30s acc=%.3f\n",
					b.Seq, res.Pattern, res.Strategy, res.Accuracy)
			}
			return res.Pred, nil
		}
	} else {
		h := model.DefaultHyper()
		h.Seed = seed
		factory, err := model.FactoryFor(family, h)
		if err != nil {
			return err
		}
		fw, err := baselines.Build(system, factory, src.Dim(), src.Classes())
		if err != nil {
			return err
		}
		step = func(b stream.Batch) ([]int, error) {
			pred, err := fw.Infer(b)
			if err != nil {
				return nil, err
			}
			if b.Labeled() {
				if err := fw.Train(b); err != nil {
					return nil, err
				}
			}
			return pred, nil
		}
	}

	for n := 0; maxBatches <= 0 || n < maxBatches; n++ {
		b, ok := src.Next()
		if !ok {
			break
		}
		pred, err := step(b)
		if err != nil {
			return err
		}
		if b.Labeled() {
			acc, err := metrics.Accuracy(pred, b.Y)
			if err != nil {
				return err
			}
			preq.Record(acc, b.Truth, len(b.X))
		}
	}
	if closer != nil {
		if err := closer(); err != nil {
			return err
		}
	}

	fmt.Printf("%s on %s (%s, batch %d)\n", system, src.Name(), family, batch)
	fmt.Printf("  batches: %d   samples: %d\n", preq.Batches(), preq.Samples())
	fmt.Printf("  G_acc:   %.2f%%\n", 100*preq.GAcc())
	fmt.Printf("  SI:      %.3f\n", preq.SI())
	for _, kind := range []stream.DriftKind{stream.KindSlight, stream.KindSudden, stream.KindReoccurring} {
		if acc, n := preq.KindAcc(kind); n > 0 {
			fmt.Printf("  acc[%-11s]: %.2f%% over %d batches\n", kind, 100*acc, n)
		}
	}
	if len(strategies) > 0 {
		fmt.Println("  strategies used:")
		for name, n := range strategies {
			fmt.Printf("    %-32s %d\n", name, n)
		}
	}
	return nil
}
