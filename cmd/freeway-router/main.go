// Command freeway-router is the stateless routing tier in front of N
// freeway-serve workers: it consistent-hashes stream ids onto the worker
// ring and forwards each request, with health probes, per-request
// deadlines, bounded retry with exponential backoff, and a per-worker
// circuit breaker. An unhealthy worker is ejected from the ring and its
// streams migrate — checkpoint-on-evict on the old owner when reachable,
// restore from the shared checkpoint directory on the new owner otherwise —
// so workers must share -checkpoint-dir for failover to preserve state:
//
//	freeway-serve  -addr :9001 -checkpoint-dir /var/lib/freeway -checkpoint-every 8
//	freeway-serve  -addr :9002 -checkpoint-dir /var/lib/freeway -checkpoint-every 8
//	freeway-router -addr :8080 -workers 127.0.0.1:9001,127.0.0.1:9002
//	curl -s localhost:8080/v1/streams/orders/process -d '{"x":[[...]],"y":[0]}'
//	curl -s localhost:8080/v1/cluster
//
// The router exposes /v1/healthz and /v1/readyz (ready = at least one
// healthy worker), /v1/metrics with its own series (retries, ejections,
// migrations, per-worker breaker state), /v1/cluster with the topology, and
// a merged /v1/streams listing. Every stream route (/v1/streams/{id}/* and
// the legacy single-stream aliases) is forwarded to the owning worker.
//
// Cluster observability: every request carries a W3C traceparent (accepted
// from the client or minted here) and each forward attempt records a span;
// /v1/cluster/trace?id= assembles the full cross-node trace,
// /v1/cluster/metrics federates every worker's /v1/metrics under
// worker="<addr>" labels, /v1/cluster/events is the breaker/migration
// timeline (JSONL), and /v1/cluster/exemplars lists the slowest requests.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"freewayml/internal/dist"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address (port 0 picks an ephemeral port; the bound address is printed)")
		workers       = flag.String("workers", "", "comma-separated worker addresses (host:port each); required")
		vnodes        = flag.Int("vnodes", dist.DefaultVNodes, "virtual nodes per worker on the hash ring")
		failThreshold = flag.Int("fail-threshold", dist.DefaultFailThreshold, "consecutive failures before a worker is ejected")
		cooldown      = flag.Duration("cooldown", dist.DefaultCooldown, "minimum ejection time before a healthy probe readmits a worker")
		probeInterval = flag.Duration("probe-interval", dist.DefaultProbeInterval, "health-probe period")
		probeTimeout  = flag.Duration("probe-timeout", dist.DefaultProbeTimeout, "per-probe (and per-migration-evict) deadline")
		reqTimeout    = flag.Duration("request-timeout", dist.DefaultRequestTimeout, "per-forward-attempt deadline")
		retries       = flag.Int("retries", dist.DefaultRetries, "retries after a failed forward attempt")
		retryBase     = flag.Duration("retry-base", dist.DefaultRetryBase, "initial retry backoff (doubles per retry, jittered)")
		retryMax      = flag.Duration("retry-max", dist.DefaultRetryMax, "retry backoff cap")
		maxBody       = flag.Int64("max-body", dist.DefaultMaxBodyBytes, "request body cap in bytes")
		antiEntropy   = flag.Bool("anti-entropy", false, "sync a rejoining worker's shared knowledge store from a healthy peer")
		aeInterval    = flag.Duration("anti-entropy-interval", 0, "periodic cluster-wide knowledge sweep period (0 disables; sweeps also cover divergence with no worker leaving the ring)")
		seed          = flag.Int64("seed", 1, "retry-jitter seed")
		spanCap       = flag.Int("span-cap", dist.DefaultSpanCap, "router span ring capacity (one span per forward attempt)")
		eventCap      = flag.Int("event-cap", dist.DefaultEventCap, "cluster timeline ring capacity")
		exemplarK     = flag.Int("exemplar-k", dist.DefaultExemplarK, "slow-request exemplars kept (top-K by latency)")
		noTracing     = flag.Bool("disable-tracing", false, "turn off trace spans, exemplars, and per-hop response headers")
	)
	flag.Parse()
	if err := run(*addr, *workers, dist.Config{
		VNodes:              *vnodes,
		FailThreshold:       *failThreshold,
		Cooldown:            *cooldown,
		ProbeInterval:       *probeInterval,
		ProbeTimeout:        *probeTimeout,
		RequestTimeout:      *reqTimeout,
		Retries:             *retries,
		RetryBase:           *retryBase,
		RetryMax:            *retryMax,
		MaxBody:             *maxBody,
		AntiEntropy:         *antiEntropy,
		AntiEntropyInterval: *aeInterval,
		Seed:                *seed,
		SpanCap:             *spanCap,
		EventCap:            *eventCap,
		ExemplarK:           *exemplarK,
		DisableTracing:      *noTracing,
	}); err != nil {
		log.Fatal(err)
	}
}

func run(addr, workers string, cfg dist.Config) error {
	for _, w := range strings.Split(workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			cfg.Workers = append(cfg.Workers, w)
		}
	}
	if len(cfg.Workers) == 0 {
		return fmt.Errorf("-workers is required (comma-separated host:port list)")
	}
	router, err := dist.NewRouter(cfg)
	if err != nil {
		return err
	}
	router.Start()
	defer router.Close()

	httpSrv := &http.Server{
		Handler:           router,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second, // forwards may ride out a full retry budget
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("freeway-router: routing %d workers, listening on %s\n",
			len(cfg.Workers), ln.Addr())
		errCh <- httpSrv.Serve(ln)
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	log.Print("freeway-router: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("freeway-router: shutdown: %v", err)
	}
	return router.Close()
}
