// Command benchall regenerates every table and figure of the paper's
// evaluation. Run it with no flags for the full sweep, or select one
// experiment:
//
//	benchall -experiment table1 -batch 256 -max 80
//
// Experiments: table1, table2, table3, table4, table5, table6, fig2, fig9,
// fig10, fig11, fig12, ablation, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"freewayml/internal/experiments"
)

// main delegates to run so profile-flushing defers fire before the process
// exits with run's status code.
func main() {
	os.Exit(run())
}

func run() int {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run")
		batch      = flag.Int("batch", 256, "mini-batch size (paper uses 1024)")
		maxBatches = flag.Int("max", 0, "cap on batches per stream (0 = full stream)")
		seed       = flag.Int64("seed", 1, "random seed")
		ablationDS = flag.String("ablation-dataset", "Hyperplane", "dataset for the ablation sweep")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchall: cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchall: cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchall: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchall: memprofile: %v\n", err)
			}
		}()
	}

	opt := experiments.Options{BatchSize: *batch, MaxBatches: *maxBatches, Seed: *seed}

	type runner struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	runners := []runner{
		{"fig2", func() (fmt.Stringer, error) { return experiments.Figure2(opt) }},
		{"table1", func() (fmt.Stringer, error) { return experiments.Table1(opt) }},
		{"table2", func() (fmt.Stringer, error) { return experiments.Table2(opt) }},
		{"fig9", func() (fmt.Stringer, error) { return experiments.Figure9(opt) }},
		{"fig10", func() (fmt.Stringer, error) { return experiments.Figure10(opt) }},
		{"fig11", func() (fmt.Stringer, error) { return experiments.Figure11(opt) }},
		{"table3", func() (fmt.Stringer, error) { return experiments.Table3(opt) }},
		{"table4", func() (fmt.Stringer, error) { return experiments.Table4(opt) }},
		{"table5", func() (fmt.Stringer, error) { return experiments.Table5(opt) }},
		{"fig12", func() (fmt.Stringer, error) { return experiments.Figure12(opt) }},
		{"table6", func() (fmt.Stringer, error) { return experiments.Table6(opt) }},
		{"ablation", func() (fmt.Stringer, error) { return experiments.Ablations(*ablationDS, opt) }},
		{"extended", func() (fmt.Stringer, error) { return experiments.Extended(opt) }},
	}

	ran := false
	for _, r := range runners {
		if *experiment != "all" && *experiment != r.name {
			continue
		}
		ran = true
		res, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchall: %s: %v\n", r.name, err)
			return 1
		}
		fmt.Println(res.String())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "benchall: unknown experiment %q\n", *experiment)
		return 2
	}
	return 0
}
