// Command freeway-loadgen drives a freeway-serve instance with concurrent
// multi-stream training traffic and reports throughput and latency
// quantiles. It is the closed-loop load harness behind `make bench-serve`
// and the CI loadgen smoke:
//
//	freeway-loadgen -serve bin/freeway-serve -streams 8 -concurrency 8 -duration 10s
//	freeway-loadgen -addr 127.0.0.1:8080 -mode open -rate 500 -duration 30s
//
// With -serve a server is booted on an ephemeral port (and torn down at
// exit); with -addr an already-running server is targeted and -serve is
// ignored. Two arrival models:
//
//   - closed (default): -concurrency workers each keep exactly one request
//     in flight — measured latency is service time under self-throttling
//     load, the right model for capacity benchmarks.
//   - open: requests are dispatched at a fixed -rate regardless of how the
//     server keeps up; latency is measured from the *intended* dispatch
//     time, so queueing delay is included — the right model for SLO checks
//     (avoids coordinated omission).
//
// Each request POSTs one labeled batch to /v1/streams/{id}/process, cycling
// round-robin over -streams synthetic streams (two separable Gaussian
// classes per stream, shifted per stream so streams are not identical).
// -proto binary switches the payload to the length-prefixed wire frame
// (-dtype picks f64 or f32 features); -coalesce boots the server with batch
// coalescing — to actually exercise fusion, run with -concurrency greater
// than -streams so several workers hit the same stream at once (e.g.
// -streams 4 -concurrency 16).
// Latency lands in an internal/obs histogram; the summary prints
// throughput, error count, and p50/p95/p99, and -out writes the same as
// JSON for scripts/bench_serve.sh to fold into BENCH_PR5.json. Exit status
// is nonzero when any request errored.
//
// Cluster mode drives the distributed tier through a kill/restart schedule:
//
//	freeway-loadgen -cluster 2 -kill-after 3s -duration 8s
//
// boots N freeway-serve workers sharing a checkpoint directory plus a
// freeway-router in front, points the load at the router, SIGKILLs one
// worker -kill-after into the run (and optionally restarts it at
// -restart-after, exercising rejoin + migrate-back). The summary then also
// reports the failure-injection view: when the kill happened, the error
// budget actually consumed (error_rate), and recovery_s — how long after
// the kill the last client-visible error occurred. Zero errors means the
// router's retry/backoff budget absorbed the failover completely.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"freewayml/internal/obs"
	"freewayml/internal/serve"
	"freewayml/internal/stream"
	"freewayml/internal/wire"
)

func main() {
	var (
		addr      = flag.String("addr", "", "target an already-running server at host:port (skips booting one)")
		serveBin  = flag.String("serve", "bin/freeway-serve", "freeway-serve binary to boot when -addr is empty")
		streams   = flag.Int("streams", 8, "number of synthetic streams")
		conc      = flag.Int("concurrency", 8, "concurrent workers (in-flight requests in closed mode)")
		batch     = flag.Int("batch", 32, "samples per request")
		dim       = flag.Int("dim", 6, "feature dimensionality")
		classes   = flag.Int("classes", 2, "number of labels")
		model     = flag.String("model", "lr", "model family for the booted server")
		duration  = flag.Duration("duration", 10*time.Second, "load duration")
		mode      = flag.String("mode", "closed", "arrival model: closed | open")
		rate      = flag.Float64("rate", 200, "open mode: total request arrivals per second")
		seed      = flag.Int64("seed", 1, "random seed for synthetic batches")
		out       = flag.String("out", "", "write the JSON summary to this file ('-' for stdout)")
		proto     = flag.String("proto", "json", "request encoding: json | binary (the length-prefixed wire frame)")
		dtype     = flag.String("dtype", "f64", "binary proto feature payload: f64 | f32")
		coalesce  = flag.Bool("coalesce", false, "boot the server with batch coalescing (ignored with -addr)")
		inferFrac = flag.Float64("infer-frac", 0, "fraction of requests sent label-less to /infer (read/write mix; 0 = pure training load)")
		coalWin   = flag.Duration("coalesce-window", 0, "booted server's coalescing gather window")
		coalRows  = flag.Int("coalesce-max-rows", 0, "booted server's fused-pass row bound")
		tier      = flag.String("kernel-tier", "", "booted server's inference kernel tier: f64 | f32 | int8-infer (empty keeps the server default; ignored with -addr)")

		cluster      = flag.Int("cluster", 0, "boot a freeway-router plus this many workers and load the router (0 keeps single-server mode)")
		routerBin    = flag.String("router", "bin/freeway-router", "freeway-router binary for -cluster mode")
		killAfter    = flag.Duration("kill-after", 0, "cluster mode: SIGKILL one worker this long into the run (0 disables)")
		restartAfter = flag.Duration("restart-after", 0, "cluster mode: restart the killed worker this long into the run (0 disables)")
		ckptEvery    = flag.Int("checkpoint-every", 1, "cluster mode: worker checkpoint period in batches (1 = lossless failover)")
	)
	flag.Parse()
	cfg := config{
		addr: *addr, serveBin: *serveBin, streams: *streams, conc: *conc,
		batch: *batch, dim: *dim, classes: *classes, model: *model,
		duration: *duration, mode: *mode, rate: *rate, seed: *seed, out: *out,
		proto: *proto, dtype: *dtype, inferFrac: *inferFrac,
		coalesce: *coalesce, coalWindow: *coalWin, coalRows: *coalRows,
		kernelTier: *tier,
		cluster:    *cluster, routerBin: *routerBin,
		killAfter: *killAfter, restartAfter: *restartAfter, ckptEvery: *ckptEvery,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "freeway-loadgen:", err)
		os.Exit(1)
	}
}

type config struct {
	addr, serveBin, model, mode, out string
	streams, conc, batch, dim        int
	classes                          int
	duration                         time.Duration
	rate                             float64
	seed                             int64

	proto, dtype string
	wireDtype    byte
	inferFrac    float64
	coalesce     bool
	coalWindow   time.Duration
	coalRows     int
	kernelTier   string

	cluster                 int
	routerBin               string
	killAfter, restartAfter time.Duration
	ckptEvery               int
}

// summary is the JSON report; field names are the contract bench_serve.sh
// and the README performance table read.
type summary struct {
	Mode          string  `json:"mode"`
	Streams       int     `json:"streams"`
	Concurrency   int     `json:"concurrency"`
	Batch         int     `json:"batch"`
	DurationS     float64 `json:"duration_s"`
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	SamplesPerS   float64 `json:"samples_per_s"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`

	// Ingest-path descriptors (omitted in the default JSON configuration, so
	// the summary stays byte-compatible with earlier consumers).
	Proto    string `json:"proto,omitempty"`
	Dtype    string `json:"dtype,omitempty"`
	Coalesce bool   `json:"coalesce,omitempty"`
	// KernelTier is the booted server's inference kernel tier (omitted when
	// the server default — the f64 oracle — was kept or -addr was used).
	KernelTier string `json:"kernel_tier,omitempty"`

	// Read/write-mix report: the configured label-less fraction and how
	// many requests actually took the inference plane.
	InferFrac     float64 `json:"infer_frac,omitempty"`
	InferRequests int64   `json:"infer_requests,omitempty"`

	// Cluster-mode failure-injection report. error_rate is the error
	// budget actually consumed; recovery_s is how long after the kill the
	// last client-visible error landed (0 = the router's retry budget
	// absorbed the failover with no errors at all).
	Cluster         int     `json:"cluster,omitempty"`
	KillAfterS      float64 `json:"kill_after_s,omitempty"`
	ErrorRate       float64 `json:"error_rate"`
	ErrorsAfterKill int64   `json:"errors_after_kill"`
	RecoveryS       float64 `json:"recovery_s"`

	// Per-hop latency breakdown, read from the X-Freeway-Worker-Micros and
	// X-Freeway-Router-Micros response headers: how much of the end-to-end
	// latency each tier spent. Omitted when the target never reported a hop
	// time (older server, or tracing disabled on the router).
	WorkerP50Ms float64 `json:"worker_p50_ms,omitempty"`
	WorkerP95Ms float64 `json:"worker_p95_ms,omitempty"`
	WorkerP99Ms float64 `json:"worker_p99_ms,omitempty"`
	RouterP50Ms float64 `json:"router_p50_ms,omitempty"`
	RouterP95Ms float64 `json:"router_p95_ms,omitempty"`
	RouterP99Ms float64 `json:"router_p99_ms,omitempty"`
}

// hopStats accumulates the per-hop wall times the serving tiers stamp on
// their responses. The histograms are concurrency-safe, so every load
// worker observes into the same pair.
type hopStats struct {
	worker *obs.Histogram
	router *obs.Histogram
}

// observe parses one hop-micros header value into its histogram.
func (h *hopStats) observe(hist *obs.Histogram, val string) {
	if val == "" {
		return
	}
	micros, err := strconv.ParseFloat(val, 64)
	if err != nil || micros < 0 {
		return
	}
	hist.Observe(micros / 1e6)
}

func run(cfg config) error {
	switch cfg.mode {
	case "closed", "open":
	default:
		return fmt.Errorf("unknown -mode %q (want closed or open)", cfg.mode)
	}
	switch cfg.proto {
	case "json", "binary":
	default:
		return fmt.Errorf("unknown -proto %q (want json or binary)", cfg.proto)
	}
	switch cfg.dtype {
	case "f64":
		cfg.wireDtype = wire.Float64
	case "f32":
		cfg.wireDtype = wire.Float32
	default:
		return fmt.Errorf("unknown -dtype %q (want f64 or f32)", cfg.dtype)
	}
	if cfg.streams < 1 || cfg.conc < 1 || cfg.batch < 1 || cfg.dim < 1 {
		return fmt.Errorf("-streams, -concurrency, -batch, and -dim must all be >= 1")
	}
	if cfg.inferFrac < 0 || cfg.inferFrac > 1 {
		return fmt.Errorf("-infer-frac must be in [0, 1]")
	}

	base := cfg.addr
	var cl *clusterProcs
	if base == "" {
		if cfg.cluster > 0 {
			var err error
			cl, err = bootCluster(cfg)
			if err != nil {
				return err
			}
			defer cl.stop()
			base = cl.router.addr
		} else {
			addr, stopServer, err := bootServer(cfg)
			if err != nil {
				return err
			}
			defer stopServer()
			base = addr
		}
	}
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	if err := waitHealthy(base, time.Now().Add(10*time.Second)); err != nil {
		return err
	}

	lat := obs.NewHistogram(nil)
	hops := &hopStats{worker: obs.NewHistogram(nil), router: obs.NewHistogram(nil)}
	var requests, errCount, inferReqs atomic.Int64
	client := &http.Client{Timeout: 30 * time.Second}

	// In open mode arrivals carry their intended dispatch time so queueing
	// delay counts against latency; the channel gives a bounded queue.
	var arrivals chan time.Time
	stopArrivals := make(chan struct{})
	if cfg.mode == "open" {
		if cfg.rate <= 0 {
			return fmt.Errorf("-rate must be > 0 in open mode")
		}
		arrivals = make(chan time.Time, 4*cfg.conc)
		go func() {
			interval := time.Duration(float64(time.Second) / cfg.rate)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			next := time.Now()
			for {
				select {
				case <-stopArrivals:
					close(arrivals)
					return
				case <-tick.C:
					next = next.Add(interval)
					select {
					case arrivals <- next:
					default: // queue full: the server is far behind; drop the arrival
					}
				}
			}
		}()
	}

	var pool stream.BatchPool
	start := time.Now()
	deadline := start.Add(cfg.duration)

	// Failure-injection clock: killTime is set when the SIGKILL lands;
	// every request error after that updates lastErrNano, so recovery time
	// is "last client-visible error after the kill".
	var killTime, lastErrNano, errsAfterKill atomic.Int64
	if cl != nil && cfg.killAfter > 0 {
		go func() {
			time.Sleep(cfg.killAfter)
			if err := cl.killWorker(0); err != nil {
				fmt.Fprintf(os.Stderr, "freeway-loadgen: kill worker: %v\n", err)
				return
			}
			killTime.Store(time.Now().UnixNano())
			fmt.Printf("freeway-loadgen: SIGKILLed worker %s %.1fs into the run\n",
				cl.workers[0].addr, time.Since(start).Seconds())
			if cfg.restartAfter > cfg.killAfter {
				time.Sleep(cfg.restartAfter - cfg.killAfter)
				if err := cl.restartWorker(0); err != nil {
					fmt.Fprintf(os.Stderr, "freeway-loadgen: restart worker: %v\n", err)
					return
				}
				fmt.Printf("freeway-loadgen: restarted worker %s %.1fs into the run\n",
					cl.workers[0].addr, time.Since(start).Seconds())
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
			buf := &bytes.Buffer{}
			var bin []byte
			for i := 0; ; i++ {
				var intended time.Time
				if cfg.mode == "open" {
					t, ok := <-arrivals
					if !ok {
						return
					}
					intended = t
				} else {
					if time.Now().After(deadline) {
						return
					}
					intended = time.Now()
				}
				sid := (w + i*cfg.conc) % cfg.streams
				err := postBatch(client, base, sid, cfg, rng, &pool, buf, &bin, hops, &inferReqs)
				lat.Observe(time.Since(intended).Seconds())
				requests.Add(1)
				if err != nil {
					errCount.Add(1)
					if killTime.Load() != 0 {
						errsAfterKill.Add(1)
						now := time.Now().UnixNano()
						for {
							old := lastErrNano.Load()
							if now <= old || lastErrNano.CompareAndSwap(old, now) {
								break
							}
						}
					}
				}
			}
		}(w)
	}
	if cfg.mode == "open" {
		time.Sleep(cfg.duration)
		close(stopArrivals)
	}
	wg.Wait()
	elapsed := time.Since(start)

	s := summary{
		Mode:          cfg.mode,
		Streams:       cfg.streams,
		Concurrency:   cfg.conc,
		Batch:         cfg.batch,
		DurationS:     elapsed.Seconds(),
		Requests:      requests.Load(),
		Errors:        errCount.Load(),
		ThroughputRPS: float64(requests.Load()) / elapsed.Seconds(),
		SamplesPerS:   float64(requests.Load()*int64(cfg.batch)) / elapsed.Seconds(),
		P50Ms:         lat.Quantile(0.50) * 1e3,
		P95Ms:         lat.Quantile(0.95) * 1e3,
		P99Ms:         lat.Quantile(0.99) * 1e3,
		Coalesce:      cfg.coalesce,
		InferFrac:     cfg.inferFrac,
		InferRequests: inferReqs.Load(),
	}
	if cfg.proto != "json" {
		s.Proto, s.Dtype = cfg.proto, cfg.dtype
	}
	s.KernelTier = cfg.kernelTier
	if s.Requests > 0 {
		s.ErrorRate = float64(s.Errors) / float64(s.Requests)
	}
	if cfg.cluster > 0 {
		s.Cluster = cfg.cluster
		s.KillAfterS = cfg.killAfter.Seconds()
		s.ErrorsAfterKill = errsAfterKill.Load()
		if kt := killTime.Load(); kt != 0 && s.ErrorsAfterKill > 0 {
			s.RecoveryS = float64(lastErrNano.Load()-kt) / 1e9
		}
	}
	if hops.worker.Count() > 0 {
		s.WorkerP50Ms = hops.worker.Quantile(0.50) * 1e3
		s.WorkerP95Ms = hops.worker.Quantile(0.95) * 1e3
		s.WorkerP99Ms = hops.worker.Quantile(0.99) * 1e3
	}
	if hops.router.Count() > 0 {
		s.RouterP50Ms = hops.router.Quantile(0.50) * 1e3
		s.RouterP95Ms = hops.router.Quantile(0.95) * 1e3
		s.RouterP99Ms = hops.router.Quantile(0.99) * 1e3
	}
	fmt.Printf("freeway-loadgen: %s mode, %d streams × %d workers × batch %d for %.1fs\n",
		s.Mode, s.Streams, s.Concurrency, s.Batch, s.DurationS)
	fmt.Printf("freeway-loadgen: %d requests (%d errors), %.0f req/s, %.0f samples/s\n",
		s.Requests, s.Errors, s.ThroughputRPS, s.SamplesPerS)
	fmt.Printf("freeway-loadgen: latency p50=%.2fms p95=%.2fms p99=%.2fms\n", s.P50Ms, s.P95Ms, s.P99Ms)
	if cfg.inferFrac > 0 {
		fmt.Printf("freeway-loadgen: read/write mix: %d of %d requests were label-less infers (target %.0f%%)\n",
			s.InferRequests, s.Requests, cfg.inferFrac*100)
	}
	if hops.worker.Count() > 0 {
		fmt.Printf("freeway-loadgen: worker hop p50=%.2fms p95=%.2fms p99=%.2fms\n",
			s.WorkerP50Ms, s.WorkerP95Ms, s.WorkerP99Ms)
	}
	if hops.router.Count() > 0 {
		fmt.Printf("freeway-loadgen: router hop p50=%.2fms p95=%.2fms p99=%.2fms\n",
			s.RouterP50Ms, s.RouterP95Ms, s.RouterP99Ms)
	}
	if cfg.cluster > 0 && killTime.Load() != 0 {
		fmt.Printf("freeway-loadgen: failover: %d errors after kill, recovery %.2fs, error rate %.4f\n",
			s.ErrorsAfterKill, s.RecoveryS, s.ErrorRate)
	}

	if cfg.out != "" {
		data, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if cfg.out == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(cfg.out, data, 0o644); err != nil {
			return err
		}
	}
	if s.Requests == 0 {
		return fmt.Errorf("no requests completed")
	}
	if s.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed", s.Errors, s.Requests)
	}
	return nil
}

// postBatch builds one synthetic labeled batch through the pool, encodes it
// into the reused buffer (JSON) or scratch slice (binary wire frame), and
// POSTs it to the stream's process endpoint. The pooled batch is released
// before return — the encoding is the copy that leaves the function, so
// recycling is safe (see stream.BatchPool on why the *server* side must not
// pool these). Per-hop wall times stamped on the response are folded into
// hops for the summary breakdown. A cfg.inferFrac coin flip sends the batch
// label-less to the stream's /infer endpoint instead — the read/write mix
// that exercises the inference plane under concurrent training.
func postBatch(client *http.Client, base string, sid int, cfg config, rng *rand.Rand, pool *stream.BatchPool, buf *bytes.Buffer, bin *[]byte, hops *hopStats, inferReqs *atomic.Int64) error {
	infer := cfg.inferFrac > 0 && rng.Float64() < cfg.inferFrac
	b := pool.Get(cfg.batch, cfg.dim)
	defer b.Release()
	// Per-stream class centers: streams differ so cross-stream isolation
	// bugs (e.g. shared session state) would surface as accuracy collapse.
	shift := float64(sid) * 0.5
	for i := range b.Rows {
		c := rng.Intn(cfg.classes)
		row := b.Rows[i]
		row[0] = shift + float64(c)*2 + rng.NormFloat64()*0.3
		for j := 1; j < cfg.dim; j++ {
			row[j] = rng.NormFloat64() * 0.3
		}
		b.Y[i] = c
	}
	y := b.Y
	endpoint := "process"
	if infer {
		y = nil // inference requests are label-less by contract
		endpoint = "infer"
		inferReqs.Add(1)
	}
	var payload []byte
	contentType := "application/json"
	if cfg.proto == "binary" {
		frame, err := wire.AppendFrame((*bin)[:0], "", cfg.wireDtype, b.Rows, y)
		if err != nil {
			return err
		}
		*bin = frame
		payload = frame
		contentType = serve.BinaryContentType
	} else {
		buf.Reset()
		if err := json.NewEncoder(buf).Encode(struct {
			X [][]float64 `json:"x"`
			Y []int       `json:"y,omitempty"`
		}{b.Rows, y}); err != nil {
			return err
		}
		payload = buf.Bytes()
	}
	url := fmt.Sprintf("%s/v1/streams/ld%03d/%s", base, sid, endpoint)
	resp, err := client.Post(url, contentType, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stream ld%03d: status %d", sid, resp.StatusCode)
	}
	hops.observe(hops.worker, resp.Header.Get(obs.WorkerMicrosHeader))
	hops.observe(hops.router, resp.Header.Get(obs.RouterMicrosHeader))
	return nil
}

var listenRe = regexp.MustCompile(`listening on (\S+)`)

// proc is one child process of the harness (a worker or the router): the
// exec handle, the announced address, and the argv needed to restart it in
// place after a SIGKILL.
type proc struct {
	bin  string
	args []string
	addr string
	cmd  *exec.Cmd
}

// startProc launches bin, scans its stdout for the "listening on <addr>"
// announcement (both freeway-serve and freeway-router print it), and
// returns once the address is known.
func startProc(bin string, args ...string) (*proc, error) {
	p := &proc{bin: bin, args: args}
	if err := p.start(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *proc) start() error {
	cmd := exec.Command(p.bin, p.args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %w", p.bin, err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := listenRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		p.addr, p.cmd = addr, cmd
		return nil
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return fmt.Errorf("%s never announced its address", p.bin)
	}
}

// pinAddr rewrites the argv so a restart rebinds the address the process
// actually got — the router's ring keys workers by address, so a restarted
// worker must come back at the same one.
func (p *proc) pinAddr() {
	for i := range p.args {
		if p.args[i] == "-addr" && i+1 < len(p.args) {
			p.args[i+1] = p.addr
		}
	}
}

// kill delivers SIGKILL — the unclean death: no final checkpoints, no
// connection draining.
func (p *proc) kill() error {
	if p.cmd == nil || p.cmd.Process == nil {
		return fmt.Errorf("%s: not running", p.bin)
	}
	if err := p.cmd.Process.Kill(); err != nil {
		return err
	}
	p.cmd.Wait()
	p.cmd = nil
	return nil
}

// stop SIGTERMs and reaps the process, escalating to SIGKILL after 10s.
func (p *proc) stop() {
	if p.cmd == nil {
		return
	}
	cmd := p.cmd
	p.cmd = nil
	cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		<-done
	}
}

// bootServer starts freeway-serve on an ephemeral port and returns the
// announced address plus a stop function that SIGTERMs and reaps it.
func bootServer(cfg config) (string, func(), error) {
	args := []string{
		"-addr", "127.0.0.1:0",
		"-dim", fmt.Sprint(cfg.dim),
		"-classes", fmt.Sprint(cfg.classes),
		"-model", cfg.model,
		"-seed", fmt.Sprint(cfg.seed),
	}
	if cfg.kernelTier != "" {
		args = append(args, "-kernel-tier", cfg.kernelTier)
	}
	if cfg.coalesce {
		args = append(args, "-coalesce")
		if cfg.coalWindow > 0 {
			args = append(args, "-coalesce-window", cfg.coalWindow.String())
		}
		if cfg.coalRows > 0 {
			args = append(args, "-coalesce-max-rows", fmt.Sprint(cfg.coalRows))
		}
	}
	p, err := startProc(cfg.serveBin, args...)
	if err != nil {
		return "", nil, err
	}
	return p.addr, p.stop, nil
}

// clusterProcs is a booted router-plus-workers topology. The mutex guards
// kill/restart (fired from the schedule goroutine) against the deferred
// teardown.
type clusterProcs struct {
	mu      sync.Mutex
	dir     string // shared checkpoint directory (failover state)
	workers []*proc
	router  *proc
}

// bootCluster starts cfg.cluster freeway-serve workers sharing one
// checkpoint directory, then a freeway-router fronting them. The router
// gets aggressive probe/breaker settings so even a short smoke run sees
// the full eject → failover → rejoin cycle.
func bootCluster(cfg config) (*clusterProcs, error) {
	dir, err := os.MkdirTemp("", "freeway-cluster-")
	if err != nil {
		return nil, err
	}
	cl := &clusterProcs{dir: dir}
	for i := 0; i < cfg.cluster; i++ {
		p, err := startProc(cfg.serveBin,
			"-addr", "127.0.0.1:0",
			"-dim", fmt.Sprint(cfg.dim),
			"-classes", fmt.Sprint(cfg.classes),
			"-model", cfg.model,
			"-seed", fmt.Sprint(cfg.seed+int64(i)),
			"-checkpoint-dir", dir,
			"-checkpoint-every", fmt.Sprint(cfg.ckptEvery),
		)
		if err != nil {
			cl.stop()
			return nil, err
		}
		p.pinAddr()
		cl.workers = append(cl.workers, p)
	}
	addrs := make([]string, len(cl.workers))
	for i, p := range cl.workers {
		addrs[i] = p.addr
	}
	r, err := startProc(cfg.routerBin,
		"-addr", "127.0.0.1:0",
		"-workers", strings.Join(addrs, ","),
		"-probe-interval", "200ms",
		"-probe-timeout", "1s",
		"-fail-threshold", "2",
		"-cooldown", "1s",
		"-retries", "8",
		"-retry-base", "50ms",
		"-retry-max", "1s",
	)
	if err != nil {
		cl.stop()
		return nil, err
	}
	cl.router = r
	return cl, nil
}

func (cl *clusterProcs) killWorker(i int) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.workers[i].kill()
}

func (cl *clusterProcs) restartWorker(i int) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.workers[i].start()
}

func (cl *clusterProcs) stop() {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.router != nil {
		cl.router.stop()
	}
	for _, p := range cl.workers {
		p.stop()
	}
	os.RemoveAll(cl.dir)
}

func waitHealthy(base string, deadline time.Time) error {
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("server at %s never became healthy", base)
}
