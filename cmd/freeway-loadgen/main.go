// Command freeway-loadgen drives a freeway-serve instance with concurrent
// multi-stream training traffic and reports throughput and latency
// quantiles. It is the closed-loop load harness behind `make bench-serve`
// and the CI loadgen smoke:
//
//	freeway-loadgen -serve bin/freeway-serve -streams 8 -concurrency 8 -duration 10s
//	freeway-loadgen -addr 127.0.0.1:8080 -mode open -rate 500 -duration 30s
//
// With -serve a server is booted on an ephemeral port (and torn down at
// exit); with -addr an already-running server is targeted and -serve is
// ignored. Two arrival models:
//
//   - closed (default): -concurrency workers each keep exactly one request
//     in flight — measured latency is service time under self-throttling
//     load, the right model for capacity benchmarks.
//   - open: requests are dispatched at a fixed -rate regardless of how the
//     server keeps up; latency is measured from the *intended* dispatch
//     time, so queueing delay is included — the right model for SLO checks
//     (avoids coordinated omission).
//
// Each request POSTs one labeled batch to /v1/streams/{id}/process, cycling
// round-robin over -streams synthetic streams (two separable Gaussian
// classes per stream, shifted per stream so streams are not identical).
// Latency lands in an internal/obs histogram; the summary prints
// throughput, error count, and p50/p95/p99, and -out writes the same as
// JSON for scripts/bench_serve.sh to fold into BENCH_PR5.json. Exit status
// is nonzero when any request errored.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"freewayml/internal/obs"
	"freewayml/internal/stream"
)

func main() {
	var (
		addr     = flag.String("addr", "", "target an already-running server at host:port (skips booting one)")
		serveBin = flag.String("serve", "bin/freeway-serve", "freeway-serve binary to boot when -addr is empty")
		streams  = flag.Int("streams", 8, "number of synthetic streams")
		conc     = flag.Int("concurrency", 8, "concurrent workers (in-flight requests in closed mode)")
		batch    = flag.Int("batch", 32, "samples per request")
		dim      = flag.Int("dim", 6, "feature dimensionality")
		classes  = flag.Int("classes", 2, "number of labels")
		model    = flag.String("model", "lr", "model family for the booted server")
		duration = flag.Duration("duration", 10*time.Second, "load duration")
		mode     = flag.String("mode", "closed", "arrival model: closed | open")
		rate     = flag.Float64("rate", 200, "open mode: total request arrivals per second")
		seed     = flag.Int64("seed", 1, "random seed for synthetic batches")
		out      = flag.String("out", "", "write the JSON summary to this file ('-' for stdout)")
	)
	flag.Parse()
	cfg := config{
		addr: *addr, serveBin: *serveBin, streams: *streams, conc: *conc,
		batch: *batch, dim: *dim, classes: *classes, model: *model,
		duration: *duration, mode: *mode, rate: *rate, seed: *seed, out: *out,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "freeway-loadgen:", err)
		os.Exit(1)
	}
}

type config struct {
	addr, serveBin, model, mode, out string
	streams, conc, batch, dim        int
	classes                          int
	duration                         time.Duration
	rate                             float64
	seed                             int64
}

// summary is the JSON report; field names are the contract bench_serve.sh
// and the README performance table read.
type summary struct {
	Mode          string  `json:"mode"`
	Streams       int     `json:"streams"`
	Concurrency   int     `json:"concurrency"`
	Batch         int     `json:"batch"`
	DurationS     float64 `json:"duration_s"`
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	SamplesPerS   float64 `json:"samples_per_s"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
}

func run(cfg config) error {
	switch cfg.mode {
	case "closed", "open":
	default:
		return fmt.Errorf("unknown -mode %q (want closed or open)", cfg.mode)
	}
	if cfg.streams < 1 || cfg.conc < 1 || cfg.batch < 1 || cfg.dim < 1 {
		return fmt.Errorf("-streams, -concurrency, -batch, and -dim must all be >= 1")
	}

	base := cfg.addr
	if base == "" {
		addr, stopServer, err := bootServer(cfg)
		if err != nil {
			return err
		}
		defer stopServer()
		base = addr
	}
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	if err := waitHealthy(base, time.Now().Add(10*time.Second)); err != nil {
		return err
	}

	lat := obs.NewHistogram(nil)
	var requests, errCount atomic.Int64
	client := &http.Client{Timeout: 30 * time.Second}

	// In open mode arrivals carry their intended dispatch time so queueing
	// delay counts against latency; the channel gives a bounded queue.
	var arrivals chan time.Time
	stopArrivals := make(chan struct{})
	if cfg.mode == "open" {
		if cfg.rate <= 0 {
			return fmt.Errorf("-rate must be > 0 in open mode")
		}
		arrivals = make(chan time.Time, 4*cfg.conc)
		go func() {
			interval := time.Duration(float64(time.Second) / cfg.rate)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			next := time.Now()
			for {
				select {
				case <-stopArrivals:
					close(arrivals)
					return
				case <-tick.C:
					next = next.Add(interval)
					select {
					case arrivals <- next:
					default: // queue full: the server is far behind; drop the arrival
					}
				}
			}
		}()
	}

	var pool stream.BatchPool
	start := time.Now()
	deadline := start.Add(cfg.duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
			buf := &bytes.Buffer{}
			for i := 0; ; i++ {
				var intended time.Time
				if cfg.mode == "open" {
					t, ok := <-arrivals
					if !ok {
						return
					}
					intended = t
				} else {
					if time.Now().After(deadline) {
						return
					}
					intended = time.Now()
				}
				sid := (w + i*cfg.conc) % cfg.streams
				err := postBatch(client, base, sid, cfg, rng, &pool, buf)
				lat.Observe(time.Since(intended).Seconds())
				requests.Add(1)
				if err != nil {
					errCount.Add(1)
				}
			}
		}(w)
	}
	if cfg.mode == "open" {
		time.Sleep(cfg.duration)
		close(stopArrivals)
	}
	wg.Wait()
	elapsed := time.Since(start)

	s := summary{
		Mode:          cfg.mode,
		Streams:       cfg.streams,
		Concurrency:   cfg.conc,
		Batch:         cfg.batch,
		DurationS:     elapsed.Seconds(),
		Requests:      requests.Load(),
		Errors:        errCount.Load(),
		ThroughputRPS: float64(requests.Load()) / elapsed.Seconds(),
		SamplesPerS:   float64(requests.Load()*int64(cfg.batch)) / elapsed.Seconds(),
		P50Ms:         lat.Quantile(0.50) * 1e3,
		P95Ms:         lat.Quantile(0.95) * 1e3,
		P99Ms:         lat.Quantile(0.99) * 1e3,
	}
	fmt.Printf("freeway-loadgen: %s mode, %d streams × %d workers × batch %d for %.1fs\n",
		s.Mode, s.Streams, s.Concurrency, s.Batch, s.DurationS)
	fmt.Printf("freeway-loadgen: %d requests (%d errors), %.0f req/s, %.0f samples/s\n",
		s.Requests, s.Errors, s.ThroughputRPS, s.SamplesPerS)
	fmt.Printf("freeway-loadgen: latency p50=%.2fms p95=%.2fms p99=%.2fms\n", s.P50Ms, s.P95Ms, s.P99Ms)

	if cfg.out != "" {
		data, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if cfg.out == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(cfg.out, data, 0o644); err != nil {
			return err
		}
	}
	if s.Requests == 0 {
		return fmt.Errorf("no requests completed")
	}
	if s.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed", s.Errors, s.Requests)
	}
	return nil
}

// postBatch builds one synthetic labeled batch through the pool, encodes it
// into the reused buffer, and POSTs it to the stream's process endpoint.
// The pooled batch is released before return — the JSON encoding is the
// copy that leaves the function, so recycling is safe (see stream.BatchPool
// on why the *server* side must not pool these).
func postBatch(client *http.Client, base string, sid int, cfg config, rng *rand.Rand, pool *stream.BatchPool, buf *bytes.Buffer) error {
	b := pool.Get(cfg.batch, cfg.dim)
	defer b.Release()
	// Per-stream class centers: streams differ so cross-stream isolation
	// bugs (e.g. shared session state) would surface as accuracy collapse.
	shift := float64(sid) * 0.5
	for i := range b.Rows {
		c := rng.Intn(cfg.classes)
		row := b.Rows[i]
		row[0] = shift + float64(c)*2 + rng.NormFloat64()*0.3
		for j := 1; j < cfg.dim; j++ {
			row[j] = rng.NormFloat64() * 0.3
		}
		b.Y[i] = c
	}
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(struct {
		X [][]float64 `json:"x"`
		Y []int       `json:"y"`
	}{b.Rows, b.Y}); err != nil {
		return err
	}
	url := fmt.Sprintf("%s/v1/streams/ld%03d/process", base, sid)
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf.Bytes()))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stream ld%03d: status %d", sid, resp.StatusCode)
	}
	return nil
}

var listenRe = regexp.MustCompile(`listening on (\S+)`)

// bootServer starts freeway-serve on an ephemeral port and returns the
// announced address plus a stop function that SIGTERMs and reaps it.
func bootServer(cfg config) (string, func(), error) {
	cmd := exec.Command(cfg.serveBin,
		"-addr", "127.0.0.1:0",
		"-dim", fmt.Sprint(cfg.dim),
		"-classes", fmt.Sprint(cfg.classes),
		"-model", cfg.model,
		"-seed", fmt.Sprint(cfg.seed),
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return "", nil, fmt.Errorf("start %s: %w", cfg.serveBin, err)
	}
	stop := func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := listenRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return addr, stop, nil
	case <-time.After(10 * time.Second):
		stop()
		return "", nil, fmt.Errorf("%s never announced its address", cfg.serveBin)
	}
}

func waitHealthy(base string, deadline time.Time) error {
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("server at %s never became healthy", base)
}
