// Package freewayml is an adaptive and stable streaming machine-learning
// framework — a from-scratch Go reproduction of "FreewayML: An Adaptive and
// Stable Streaming Learning Framework for Dynamic Data Streams" (ICDE 2025).
//
// FreewayML classifies every incoming mini-batch into one of three data
// distribution shift patterns and dispatches one adaptive mechanism per
// batch:
//
//   - slight shifts   → multi-time-granularity models fused by a
//     Gaussian-kernel distance ensemble,
//   - sudden shifts   → coherent experience clustering (k-means guided by
//     the most recent labeled points),
//   - reoccurring shifts → historical knowledge reuse (a store of
//     (distribution, model-snapshot) pairs matched by distance).
//
// Quick start:
//
//	learner, err := freewayml.New(freewayml.DefaultConfig(), dim, classes)
//	if err != nil { ... }
//	defer learner.Close()
//	for batch := range batches {
//	    res, err := learner.ProcessBatch(batch.X, batch.Y)
//	    // res.Predictions, res.Pattern, res.Strategy, res.Accuracy
//	}
//
// The package also ships the paper's dataset simulators (OpenDataset) and
// the prequential metrics (Stats) used throughout its evaluation.
package freewayml

import (
	"context"
	"fmt"
	"io"

	"freewayml/internal/core"
	"freewayml/internal/datasets"
	"freewayml/internal/guard"
	"freewayml/internal/stream"
)

// Config configures a Learner. It mirrors the paper's published interface:
// Learner(Model=model, ModelNum=2, MiniBatch=1024, KdgBuffer=20,
// ExpBuffer=10, α=1.96).
type Config struct {
	// Model selects the streaming model family: "lr", "mlp", "cnn3", "cnn5".
	Model string
	// ModelNum is the number of time-granularity models (>= 2).
	ModelNum int
	// KdgBuffer bounds the historical knowledge store (entries).
	KdgBuffer int
	// ExpBuffer bounds the coherent-experience buffer (labeled points).
	ExpBuffer int
	// Alpha is the shift-severity threshold α (1.96 in the paper).
	Alpha float64
	// Beta is the disorder threshold β of the knowledge-preservation policy.
	Beta float64
	// LearningRate, Momentum and HiddenUnits set the SGD hyperparameters.
	LearningRate float64
	Momentum     float64
	HiddenUnits  int
	// Seed drives every stochastic component for reproducibility.
	Seed int64
	// Async runs long-granularity model updates on a background goroutine.
	Async bool
	// SpillDir, when set, receives knowledge snapshots spilled from memory.
	SpillDir string
	// Standardize wraps every model with an online per-feature z-score
	// scaler, making training robust to large or shifting feature offsets.
	Standardize bool
	// GuardPolicy picks what happens to NaN/Inf feature values: "off",
	// "reject" (refuse the batch, the default), "clamp" (replace with finite
	// bounds), or "impute" (replace with running per-feature means).
	GuardPolicy string
	// DisableWatchdog turns off the divergence watchdog that rolls a model
	// back to its last healthy snapshot when training diverges.
	DisableWatchdog bool
}

// DefaultConfig returns the paper's defaults.
func DefaultConfig() Config {
	c := core.DefaultConfig()
	return Config{
		Model:        c.ModelFamily,
		ModelNum:     c.ModelNum,
		KdgBuffer:    c.KdgBuffer,
		ExpBuffer:    c.ExpBufferPoints,
		Alpha:        c.Alpha,
		Beta:         c.Beta,
		LearningRate: c.Hyper.LR,
		Momentum:     c.Hyper.Momentum,
		HiddenUnits:  c.Hyper.Hidden,
		Seed:         c.Seed,
		GuardPolicy:  c.Guard.String(),
	}
}

func (c Config) toCore() (core.Config, error) {
	cc := core.DefaultConfig()
	cc.ModelFamily = c.Model
	cc.ModelNum = c.ModelNum
	cc.KdgBuffer = c.KdgBuffer
	cc.ExpBufferPoints = c.ExpBuffer
	cc.Alpha = c.Alpha
	cc.Beta = c.Beta
	cc.Hyper.LR = c.LearningRate
	cc.Hyper.Momentum = c.Momentum
	cc.Hyper.Hidden = c.HiddenUnits
	cc.Hyper.Seed = c.Seed
	cc.Seed = c.Seed
	cc.Async = c.Async
	cc.SpillDir = c.SpillDir
	cc.Standardize = c.Standardize
	pol, err := guard.ParsePolicy(c.GuardPolicy)
	if err != nil {
		return core.Config{}, err
	}
	cc.Guard = pol
	cc.Watchdog.Disabled = c.DisableWatchdog
	return cc, nil
}

// Result reports what the learner decided about one batch.
type Result struct {
	// Predictions holds the predicted class per sample.
	Predictions []int
	// Pattern names the detected shift pattern ("warmup", "A(slight)",
	// "A1(directional)", "A2(localized)", "B(sudden)", "C(reoccurring)").
	Pattern string
	// Strategy names the mechanism used ("warmup", "multi-granularity",
	// "coherent-experience-clustering", "knowledge-reuse").
	Strategy string
	// ShiftDistance is d_t, the distance from the previous batch's
	// distribution; Severity is the weighted z-score M.
	ShiftDistance float64
	Severity      float64
	// Accuracy is the batch's real-time accuracy when labels were given,
	// else -1.
	Accuracy float64
}

// Learner is a FreewayML instance bound to a fixed feature dimensionality
// and class count.
type Learner struct {
	inner *core.Learner
	seq   int
}

// New builds a Learner for streams with dim features and the given number
// of classes.
func New(cfg Config, dim, classes int) (*Learner, error) {
	if dim < 1 || classes < 2 {
		return nil, fmt.Errorf("freewayml: need dim >= 1 and classes >= 2, got %d/%d", dim, classes)
	}
	cc, err := cfg.toCore()
	if err != nil {
		return nil, err
	}
	inner, err := core.NewLearner(cc, dim, classes)
	if err != nil {
		return nil, err
	}
	return &Learner{inner: inner}, nil
}

// ProcessBatch runs the prequential step on one mini-batch: predict first,
// then (when y is non-nil) incrementally train. x is row-major samples; y,
// when given, must have one label per row.
func (l *Learner) ProcessBatch(x [][]float64, y []int) (Result, error) {
	return l.ProcessBatchContext(context.Background(), x, y)
}

// ProcessBatchContext is ProcessBatch with a cancellation context: a batch
// whose context is already done is refused before any model state changes.
func (l *Learner) ProcessBatchContext(ctx context.Context, x [][]float64, y []int) (Result, error) {
	b := stream.Batch{Seq: l.seq, X: x, Y: y}
	l.seq++
	res, err := l.inner.Process(ctx, b)
	if err != nil {
		return Result{}, err
	}
	pattern := res.Pattern
	if res.Pattern.IsSlight() {
		pattern = res.SubPattern
	}
	return Result{
		Predictions:   res.Pred,
		Pattern:       pattern.String(),
		Strategy:      res.Strategy.String(),
		ShiftDistance: res.Observation.Distance,
		Severity:      res.Observation.Severity,
		Accuracy:      res.Accuracy,
	}, nil
}

// Stats summarizes the learner's prequential performance so far.
type Stats struct {
	// Batches and Samples evaluated with labels.
	Batches, Samples int
	// GAcc is the global average accuracy (Eq. 15).
	GAcc float64
	// SI is the stability index (Eq. 16), in (0, 1], higher is more stable.
	SI float64
	// KnowledgeEntries and KnowledgeBytes describe the historical store.
	KnowledgeEntries int
	KnowledgeBytes   int

	// Robustness counters from the fault-tolerance layer.
	//
	// SanitizedValues counts NaN/Inf feature values repaired by the guard,
	// RejectedBatches counts batches refused under the "reject" policy,
	// Divergences counts watchdog-detected training divergences and
	// Recoveries the rollbacks that fixed them, AsyncErrorsDropped counts
	// background-update errors lost to overflow, KnowledgeSkipped counts
	// corrupt knowledge entries dropped during a restore, and SpillFailures
	// counts knowledge-store disk operations that failed (degraded, never
	// fatal).
	SanitizedValues    int
	RejectedBatches    int
	Divergences        int
	Recoveries         int
	AsyncErrorsDropped int
	KnowledgeSkipped   int
	SpillFailures      int
}

// Stats returns the accumulated prequential metrics.
func (l *Learner) Stats() Stats {
	m := l.inner.Metrics()
	h := l.inner.Stats()
	return Stats{
		Batches:          m.Batches(),
		Samples:          m.Samples(),
		GAcc:             m.GAcc(),
		SI:               m.SI(),
		KnowledgeEntries: l.inner.KnowledgeStore().Len(),
		KnowledgeBytes:   l.inner.KnowledgeStore().MemoryBytes(),

		SanitizedValues:    h.SanitizedValues,
		RejectedBatches:    h.RejectedBatches,
		Divergences:        h.Divergences,
		Recoveries:         h.Recoveries,
		AsyncErrorsDropped: h.AsyncErrorsDropped,
		KnowledgeSkipped:   h.KnowledgeSkipped,
		SpillFailures:      h.SpillFailures + h.SpillLoadFailures,
	}
}

// AccuracySeries returns the per-batch real-time accuracies recorded so far.
func (l *Learner) AccuracySeries() []float64 { return l.inner.Metrics().Series() }

// Close flushes any in-flight asynchronous update and returns the first
// background error, if any.
func (l *Learner) Close() error { return l.inner.Close() }

// Save writes the learner's durable state — model parameters, the shift
// detector's PCA space and history, the knowledge store, and the coherent
// experience — so a deployed stream can stop and later resume with
// identical behaviour via Load.
func (l *Learner) Save(w io.Writer) error { return l.inner.SaveCheckpoint(w) }

// Load restores state written by Save into a learner built with the same
// configuration and stream shape. Corrupt input (truncated, bit-flipped,
// or not a checkpoint) is detected before any state is touched, so a failed
// Load leaves the learner exactly as it was.
func (l *Learner) Load(r io.Reader) error { return l.inner.LoadCheckpoint(r) }

// SaveFile atomically checkpoints the learner to path (temp file + fsync +
// rename): a crash mid-save leaves either the previous checkpoint or the
// new one, never a torn file.
func (l *Learner) SaveFile(path string) error { return l.inner.SaveCheckpointFile(path) }

// LoadFile restores a checkpoint written by SaveFile.
func (l *Learner) LoadFile(path string) error { return l.inner.LoadCheckpointFile(path) }

// Batch is one mini-batch from a Stream.
type Batch struct {
	X     [][]float64
	Y     []int
	Drift string // ground-truth drift kind: "none", "slight", "sudden", "reoccurring"
}

// Stream is a dataset source opened with OpenDataset.
type Stream struct {
	src stream.Source
}

// OpenDataset opens one of the built-in dataset simulators by name
// (Datasets lists them) with the given batch size and random seed.
func OpenDataset(name string, batchSize int, seed int64) (*Stream, error) {
	src, err := datasets.Build(name, batchSize, seed)
	if err != nil {
		return nil, err
	}
	return &Stream{src: src}, nil
}

// Datasets lists the available dataset names.
func Datasets() []string { return datasets.Names() }

// Name returns the dataset name; Dim and Classes its shape.
func (s *Stream) Name() string { return s.src.Name() }

// Dim returns the feature dimensionality.
func (s *Stream) Dim() int { return s.src.Dim() }

// Classes returns the number of labels.
func (s *Stream) Classes() int { return s.src.Classes() }

// Next returns the next batch, or ok=false at end of stream.
func (s *Stream) Next() (Batch, bool) {
	b, ok := s.src.Next()
	if !ok {
		return Batch{}, false
	}
	return Batch{X: b.X, Y: b.Y, Drift: b.Truth.String()}, true
}
