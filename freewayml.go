// Package freewayml is an adaptive and stable streaming machine-learning
// framework — a from-scratch Go reproduction of "FreewayML: An Adaptive and
// Stable Streaming Learning Framework for Dynamic Data Streams" (ICDE 2025).
//
// FreewayML classifies every incoming mini-batch into one of three data
// distribution shift patterns and dispatches one adaptive mechanism per
// batch:
//
//   - slight shifts   → multi-time-granularity models fused by a
//     Gaussian-kernel distance ensemble,
//   - sudden shifts   → coherent experience clustering (k-means guided by
//     the most recent labeled points),
//   - reoccurring shifts → historical knowledge reuse (a store of
//     (distribution, model-snapshot) pairs matched by distance).
//
// Quick start:
//
//	learner, err := freewayml.New(freewayml.DefaultConfig(), dim, classes)
//	if err != nil { ... }
//	defer learner.Close()
//	for batch := range batches {
//	    res, err := learner.ProcessBatch(batch.X, batch.Y)
//	    // res.Predictions, res.Pattern, res.Strategy, res.Accuracy
//	}
//
// The package also ships the paper's dataset simulators (OpenDataset) and
// the prequential metrics (Stats) used throughout its evaluation.
package freewayml

import (
	"fmt"
	"io"

	"freewayml/internal/core"
	"freewayml/internal/datasets"
	"freewayml/internal/stream"
)

// Config configures a Learner. It mirrors the paper's published interface:
// Learner(Model=model, ModelNum=2, MiniBatch=1024, KdgBuffer=20,
// ExpBuffer=10, α=1.96).
type Config struct {
	// Model selects the streaming model family: "lr", "mlp", "cnn3", "cnn5".
	Model string
	// ModelNum is the number of time-granularity models (>= 2).
	ModelNum int
	// KdgBuffer bounds the historical knowledge store (entries).
	KdgBuffer int
	// ExpBuffer bounds the coherent-experience buffer (labeled points).
	ExpBuffer int
	// Alpha is the shift-severity threshold α (1.96 in the paper).
	Alpha float64
	// Beta is the disorder threshold β of the knowledge-preservation policy.
	Beta float64
	// LearningRate, Momentum and HiddenUnits set the SGD hyperparameters.
	LearningRate float64
	Momentum     float64
	HiddenUnits  int
	// Seed drives every stochastic component for reproducibility.
	Seed int64
	// Async runs long-granularity model updates on a background goroutine.
	Async bool
	// SpillDir, when set, receives knowledge snapshots spilled from memory.
	SpillDir string
	// Standardize wraps every model with an online per-feature z-score
	// scaler, making training robust to large or shifting feature offsets.
	Standardize bool
}

// DefaultConfig returns the paper's defaults.
func DefaultConfig() Config {
	c := core.DefaultConfig()
	return Config{
		Model:        c.ModelFamily,
		ModelNum:     c.ModelNum,
		KdgBuffer:    c.KdgBuffer,
		ExpBuffer:    c.ExpBufferPoints,
		Alpha:        c.Alpha,
		Beta:         c.Beta,
		LearningRate: c.Hyper.LR,
		Momentum:     c.Hyper.Momentum,
		HiddenUnits:  c.Hyper.Hidden,
		Seed:         c.Seed,
	}
}

func (c Config) toCore() core.Config {
	cc := core.DefaultConfig()
	cc.ModelFamily = c.Model
	cc.ModelNum = c.ModelNum
	cc.KdgBuffer = c.KdgBuffer
	cc.ExpBufferPoints = c.ExpBuffer
	cc.Alpha = c.Alpha
	cc.Beta = c.Beta
	cc.Hyper.LR = c.LearningRate
	cc.Hyper.Momentum = c.Momentum
	cc.Hyper.Hidden = c.HiddenUnits
	cc.Hyper.Seed = c.Seed
	cc.Seed = c.Seed
	cc.Async = c.Async
	cc.SpillDir = c.SpillDir
	cc.Standardize = c.Standardize
	return cc
}

// Result reports what the learner decided about one batch.
type Result struct {
	// Predictions holds the predicted class per sample.
	Predictions []int
	// Pattern names the detected shift pattern ("warmup", "A(slight)",
	// "A1(directional)", "A2(localized)", "B(sudden)", "C(reoccurring)").
	Pattern string
	// Strategy names the mechanism used ("warmup", "multi-granularity",
	// "coherent-experience-clustering", "knowledge-reuse").
	Strategy string
	// ShiftDistance is d_t, the distance from the previous batch's
	// distribution; Severity is the weighted z-score M.
	ShiftDistance float64
	Severity      float64
	// Accuracy is the batch's real-time accuracy when labels were given,
	// else -1.
	Accuracy float64
}

// Learner is a FreewayML instance bound to a fixed feature dimensionality
// and class count.
type Learner struct {
	inner *core.Learner
	seq   int
}

// New builds a Learner for streams with dim features and the given number
// of classes.
func New(cfg Config, dim, classes int) (*Learner, error) {
	if dim < 1 || classes < 2 {
		return nil, fmt.Errorf("freewayml: need dim >= 1 and classes >= 2, got %d/%d", dim, classes)
	}
	inner, err := core.NewLearner(cfg.toCore(), dim, classes)
	if err != nil {
		return nil, err
	}
	return &Learner{inner: inner}, nil
}

// ProcessBatch runs the prequential step on one mini-batch: predict first,
// then (when y is non-nil) incrementally train. x is row-major samples; y,
// when given, must have one label per row.
func (l *Learner) ProcessBatch(x [][]float64, y []int) (Result, error) {
	b := stream.Batch{Seq: l.seq, X: x, Y: y}
	l.seq++
	res, err := l.inner.Process(b)
	if err != nil {
		return Result{}, err
	}
	pattern := res.Pattern
	if res.Pattern.IsSlight() {
		pattern = res.SubPattern
	}
	return Result{
		Predictions:   res.Pred,
		Pattern:       pattern.String(),
		Strategy:      res.Strategy.String(),
		ShiftDistance: res.Observation.Distance,
		Severity:      res.Observation.Severity,
		Accuracy:      res.Accuracy,
	}, nil
}

// Stats summarizes the learner's prequential performance so far.
type Stats struct {
	// Batches and Samples evaluated with labels.
	Batches, Samples int
	// GAcc is the global average accuracy (Eq. 15).
	GAcc float64
	// SI is the stability index (Eq. 16), in (0, 1], higher is more stable.
	SI float64
	// KnowledgeEntries and KnowledgeBytes describe the historical store.
	KnowledgeEntries int
	KnowledgeBytes   int
}

// Stats returns the accumulated prequential metrics.
func (l *Learner) Stats() Stats {
	m := l.inner.Metrics()
	return Stats{
		Batches:          m.Batches(),
		Samples:          m.Samples(),
		GAcc:             m.GAcc(),
		SI:               m.SI(),
		KnowledgeEntries: l.inner.KnowledgeStore().Len(),
		KnowledgeBytes:   l.inner.KnowledgeStore().MemoryBytes(),
	}
}

// AccuracySeries returns the per-batch real-time accuracies recorded so far.
func (l *Learner) AccuracySeries() []float64 { return l.inner.Metrics().Series() }

// Close flushes any in-flight asynchronous update and returns the first
// background error, if any.
func (l *Learner) Close() error { return l.inner.Close() }

// Save writes the learner's durable state — model parameters, the shift
// detector's PCA space and history, the knowledge store, and the coherent
// experience — so a deployed stream can stop and later resume with
// identical behaviour via Load.
func (l *Learner) Save(w io.Writer) error { return l.inner.SaveCheckpoint(w) }

// Load restores state written by Save into a learner built with the same
// configuration and stream shape.
func (l *Learner) Load(r io.Reader) error { return l.inner.LoadCheckpoint(r) }

// Batch is one mini-batch from a Stream.
type Batch struct {
	X     [][]float64
	Y     []int
	Drift string // ground-truth drift kind: "none", "slight", "sudden", "reoccurring"
}

// Stream is a dataset source opened with OpenDataset.
type Stream struct {
	src stream.Source
}

// OpenDataset opens one of the built-in dataset simulators by name
// (Datasets lists them) with the given batch size and random seed.
func OpenDataset(name string, batchSize int, seed int64) (*Stream, error) {
	src, err := datasets.Build(name, batchSize, seed)
	if err != nil {
		return nil, err
	}
	return &Stream{src: src}, nil
}

// Datasets lists the available dataset names.
func Datasets() []string { return datasets.Names() }

// Name returns the dataset name; Dim and Classes its shape.
func (s *Stream) Name() string { return s.src.Name() }

// Dim returns the feature dimensionality.
func (s *Stream) Dim() int { return s.src.Dim() }

// Classes returns the number of labels.
func (s *Stream) Classes() int { return s.src.Classes() }

// Next returns the next batch, or ok=false at end of stream.
func (s *Stream) Next() (Batch, bool) {
	b, ok := s.src.Next()
	if !ok {
		return Batch{}, false
	}
	return Batch{X: b.X, Y: b.Y, Drift: b.Truth.String()}, true
}
