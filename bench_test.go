package freewayml

// One benchmark per table and figure of the paper's evaluation, each driving
// the same harness as cmd/benchall at a bench-friendly scale. Regenerate the
// paper-scale numbers with:
//
//	go run ./cmd/benchall -batch 1024
//
// The per-iteration metric reported through b.ReportMetric is the experiment's
// headline number, so `go test -bench=.` doubles as a regression gate on the
// reproduction's shape.

import (
	"testing"

	"freewayml/internal/experiments"
)

// benchOpt drains each dataset's full drift schedule (~145 batches) at a
// small batch size, so every pattern phase is exercised; the heavyweight
// CNN and latency benches override MaxBatches below.
func benchOpt() experiments.Options {
	return experiments.Options{BatchSize: 64, MaxBatches: 0, Seed: 1}
}

func BenchmarkFigure2ShiftGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Streams[0].Correlation, "corr")
	}
}

func BenchmarkTable1Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		accWins, _ := res.FreewayWins("lr")
		b.ReportMetric(float64(accWins), "lr-wins")
	}
}

func BenchmarkTable2PatternImprovement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Reoccurring, "reoccur-gain-pct")
	}
}

func BenchmarkFigure9MechanismSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure9(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Series)), "datasets")
	}
}

func BenchmarkFigure10Throughput(b *testing.B) {
	opt := benchOpt()
	opt.MaxBatches = 5
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure10(opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows["mlp"]["FreewayML"][1024], "samples/s@1024")
	}
}

func BenchmarkFigure11PatternComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure11(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		wins, total := res.FreewayWinsSevere()
		b.ReportMetric(float64(wins)/float64(total), "severe-win-rate")
	}
}

func BenchmarkTable3Latency(b *testing.B) {
	opt := benchOpt()
	opt.MaxBatches = 4
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows["lr"]["FreewayML"][512].InferMicros, "lr-infer-us@512")
	}
}

func BenchmarkTable4KnowledgeSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Rows[len(res.Rows)-1].MLPBytes)/1024, "mlp-kb@k100")
	}
}

func BenchmarkTable5CNN(b *testing.B) {
	opt := benchOpt()
	opt.MaxBatches = 15
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table5(opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Rows[0].FreewayGAcc, "cnn-gacc-pct")
	}
}

func BenchmarkFigure12CNNSeries(b *testing.B) {
	opt := benchOpt()
	opt.MaxBatches = 15
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure12(opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Series)), "datasets")
	}
}

func BenchmarkTable6CNNLatency(b *testing.B) {
	opt := benchOpt()
	opt.MaxBatches = 3
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table6(opt)
		if err != nil {
			b.Fatal(err)
		}
		overhead := res.Rows[0].FreewayInferMicros / res.Rows[0].PlainInferMicros
		b.ReportMetric(overhead, "infer-overhead-x")
	}
}

// Ablation benches: each design choice DESIGN.md calls out, on/off.

func benchAblation(b *testing.B, row int) {
	opt := benchOpt()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ablations("Electricity", opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(res.Rows[row].OnGAcc-res.Rows[row].OffGAcc), "on-minus-off-pts")
	}
}

func BenchmarkAblationASWDecay(b *testing.B)        { benchAblation(b, 0) }
func BenchmarkAblationEnsemble(b *testing.B)        { benchAblation(b, 1) }
func BenchmarkAblationPrecompute(b *testing.B)      { benchAblation(b, 2) }
func BenchmarkAblationKnowledgePolicy(b *testing.B) { benchAblation(b, 3) }

// BenchmarkAblationCEC compares coherent experience clustering against a
// nearest-centroid-only mapping on a sudden-shift-heavy stream via the
// public API (CEC engaged vs a single-point experience buffer that starves
// it).
func BenchmarkAblationCEC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full := runPublic(b, 256)
		starved := runPublic(b, 1)
		b.ReportMetric(100*(full-starved), "cec-gain-pts")
	}
}

func runPublic(b *testing.B, expBuffer int) float64 {
	b.Helper()
	src, err := OpenDataset("Hyperplane", 64, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ExpBuffer = expBuffer
	l, err := New(cfg, src.Dim(), src.Classes())
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	for n := 0; n < 60; n++ {
		batch, ok := src.Next()
		if !ok {
			break
		}
		if _, err := l.ProcessBatch(batch.X, batch.Y); err != nil {
			b.Fatal(err)
		}
	}
	return l.Stats().GAcc
}

// Micro-benchmarks of the hot paths.

func BenchmarkLearnerProcess(b *testing.B) {
	src, err := OpenDataset("Electricity", 256, 1)
	if err != nil {
		b.Fatal(err)
	}
	l, err := New(DefaultConfig(), src.Dim(), src.Classes())
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	batch, _ := src.Next()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.ProcessBatch(batch.X, batch.Y); err != nil {
			b.Fatal(err)
		}
	}
}
